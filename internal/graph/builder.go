package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is not usable; create one with NewBuilder.
//
// Duplicate edges are preserved by default (parallel arcs increase the
// transition probability between the endpoints, mirroring multigraph
// semantics); call DedupEdges before Finalize to collapse them.
type Builder struct {
	directed bool
	numNodes int
	edges    []Edge
	labels   []string
	selfLoop bool
}

// NewBuilder returns a Builder for a directed or undirected graph.
func NewBuilder(directed bool) *Builder {
	return &Builder{directed: directed}
}

// AllowSelfLoops controls whether AddEdge accepts u == v edges. The default is
// to silently drop them, matching the random-surfer model where a self loop
// only delays the walk.
func (b *Builder) AllowSelfLoops(allow bool) { b.selfLoop = allow }

// AddNode adds a single unlabeled node and returns its identifier.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.numNodes)
	b.numNodes++
	return id
}

// AddLabeledNode adds a node carrying a label and returns its identifier.
func (b *Builder) AddLabeledNode(label string) NodeID {
	id := b.AddNode()
	for len(b.labels) < int(id) {
		b.labels = append(b.labels, "")
	}
	b.labels = append(b.labels, label)
	return id
}

// EnsureNodes grows the node set so that at least n nodes exist.
func (b *Builder) EnsureNodes(n int) {
	if n > b.numNodes {
		b.numNodes = n
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return b.numNodes }

// NumEdges returns the number of edges added so far (as added, i.e. logical
// edges for an undirected graph).
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge records an edge between two already-added nodes. For an undirected
// builder the edge is logically {u,v}; both orientations are materialized by
// Finalize. Self loops are dropped unless AllowSelfLoops(true) was called.
func (b *Builder) AddEdge(u, v NodeID) error {
	if int(u) >= b.numNodes || u < 0 || int(v) >= b.numNodes || v < 0 {
		return fmt.Errorf("%w: edge (%d,%d) with %d nodes", ErrNodeOutOfRange, u, v, b.numNodes)
	}
	if u == v && !b.selfLoop {
		return nil
	}
	b.edges = append(b.edges, Edge{From: u, To: v})
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// generators that construct edges from trusted indices.
func (b *Builder) MustAddEdge(u, v NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// DedupEdges removes duplicate edges (and, for undirected builders, duplicate
// orientations of the same logical edge).
func (b *Builder) DedupEdges() {
	seen := make(map[Edge]struct{}, len(b.edges))
	out := b.edges[:0]
	for _, e := range b.edges {
		key := e
		if !b.directed && key.From > key.To {
			key.From, key.To = key.To, key.From
		}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, e)
	}
	b.edges = out
}

// Finalize builds the immutable CSR graph. The Builder can be reused
// afterwards (additional nodes/edges produce a new graph on the next call).
func (b *Builder) Finalize() *Graph {
	n := b.numNodes
	arcs := b.edges
	if !b.directed {
		// Materialize both orientations.
		doubled := make([]Edge, 0, 2*len(b.edges))
		for _, e := range b.edges {
			doubled = append(doubled, e)
			if e.From != e.To {
				doubled = append(doubled, Edge{From: e.To, To: e.From})
			}
		}
		arcs = doubled
	}

	outDeg := make([]int64, n)
	inDeg := make([]int32, n)
	for _, e := range arcs {
		outDeg[e.From]++
		inDeg[e.To]++
	}
	offsets := make([]int64, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + outDeg[u]
	}
	targets := make([]NodeID, len(arcs))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range arcs {
		targets[cursor[e.From]] = e.To
		cursor[e.From]++
	}
	// Sort each adjacency run for deterministic traversal order.
	for u := 0; u < n; u++ {
		run := targets[offsets[u]:offsets[u+1]]
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
	}

	labels := b.labels
	if len(labels) > 0 && len(labels) < n {
		padded := make([]string, n)
		copy(padded, labels)
		labels = padded
	}
	return &Graph{
		directed:   b.directed,
		outOffsets: offsets,
		outTargets: targets,
		inDegree:   inDeg,
		labels:     labels,
	}
}

// FromEdges is a convenience constructor building a graph directly from an
// edge slice over nodes [0, numNodes).
func FromEdges(numNodes int, directed bool, edges []Edge) (*Graph, error) {
	b := NewBuilder(directed)
	b.EnsureNodes(numNodes)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	return b.Finalize(), nil
}
