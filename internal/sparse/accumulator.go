// accumulator.go implements the flat sorted-slice accumulator used by the
// query inner loop. The online stage of FastPPV (Sect. 5) repeatedly folds
// scaled prime PPVs into a running estimate; doing that over map-based
// Vectors costs a hash probe per entry plus a defensive clone per hub
// (ExtensionVector). The Accumulator instead keeps entries as a []Entry
// sorted by node id and folds each hub record in with a single linear merge,
// reading the hub's entries either from a decoded Vector or directly from
// the 12-byte on-disk record encoding (see EncodedEntrySize) without
// materializing an intermediate map. Results convert back to the public
// map-based Vector only at the API boundary.
package sparse

import (
	"encoding/binary"
	"math"
	"sort"

	"fastppv/internal/graph"
)

// EncodedEntrySize is the size of one (node, score) entry in the flat record
// encoding shared with the on-disk index format: node id as uint32 followed
// by the IEEE-754 bits of the score as uint64, both little-endian. Entries in
// an encoded record are sorted by ascending node id.
const EncodedEntrySize = 12

// PutEncodedEntry writes one encoded entry at the start of b, which must be
// at least EncodedEntrySize bytes long.
func PutEncodedEntry(b []byte, id graph.NodeID, score float64) {
	binary.LittleEndian.PutUint32(b[0:4], uint32(id))
	binary.LittleEndian.PutUint64(b[4:12], math.Float64bits(score))
}

// EncodedEntryAt decodes the i-th entry of an encoded record payload.
func EncodedEntryAt(b []byte, i int) (graph.NodeID, float64) {
	off := i * EncodedEntrySize
	id := graph.NodeID(binary.LittleEndian.Uint32(b[off : off+4]))
	score := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4 : off+12]))
	return id, score
}

// extensionEpsilon is the threshold below which the self-loop-corrected score
// of a hub's own entry is dropped, matching prime.ExtensionVector.
const extensionEpsilon = 1e-15

// Accumulator is a sparse score vector stored as a slice of entries sorted by
// ascending node id. It is the zero-copy counterpart of Vector for the query
// hot loop: merges are linear scans, the deterministic ordered sum is a plain
// loop (entries are already in ascending node order), and no per-hub maps or
// clones are allocated. An Accumulator is not safe for concurrent use.
//
// The zero value is ready to use; Reset makes an instance reusable without
// releasing its backing storage, which is what makes pooling effective.
type Accumulator struct {
	entries []Entry // invariant: sorted by ascending Node, no duplicates
	scratch []Entry // merge destination, swapped with entries after each fold
	tmp     []Entry // staging area for unsorted (map) inputs
	staged  []Entry // contributions staged by Stage* since the last Combine
}

// Reset truncates the accumulator to empty, retaining capacity.
func (a *Accumulator) Reset() {
	a.entries = a.entries[:0]
	a.scratch = a.scratch[:0]
	a.tmp = a.tmp[:0]
	a.staged = a.staged[:0]
}

// Len returns the number of stored entries.
func (a *Accumulator) Len() int { return len(a.entries) }

// Entries returns the backing entry slice, sorted by ascending node id. The
// slice aliases the accumulator's storage and is invalidated by the next
// mutating call; callers must not modify or retain it.
func (a *Accumulator) Entries() []Entry { return a.entries }

// Get returns the score of id (zero when absent) via binary search.
func (a *Accumulator) Get(id graph.NodeID) float64 {
	i := sort.Search(len(a.entries), func(i int) bool { return a.entries[i].Node >= id })
	if i < len(a.entries) && a.entries[i].Node == id {
		return a.entries[i].Score
	}
	return 0
}

// SetVector replaces the accumulator's contents with the entries of v.
func (a *Accumulator) SetVector(v Vector) {
	a.entries = a.entries[:0]
	//lint:ordered collect-then-sort: entries are sorted by node id on the next line
	for id, s := range v {
		a.entries = append(a.entries, Entry{Node: id, Score: s})
	}
	sort.Slice(a.entries, func(i, j int) bool { return a.entries[i].Node < a.entries[j].Node })
}

// SetEncoded replaces the accumulator's contents with the entries of an
// encoded record payload (len(data) must be a multiple of EncodedEntrySize;
// entries must be sorted by ascending node id, as written by the index).
func (a *Accumulator) SetEncoded(data []byte) {
	n := len(data) / EncodedEntrySize
	if cap(a.entries) < n {
		a.entries = make([]Entry, 0, n)
	}
	a.entries = a.entries[:0]
	for i := 0; i < n; i++ {
		id, s := EncodedEntryAt(data, i)
		a.entries = append(a.entries, Entry{Node: id, Score: s})
	}
}

// Sum returns the total mass, accumulating in ascending node order. Because
// entries are kept sorted, this is the same floating-point result as
// Vector.SumOrdered over an equal vector — the byte-reproducibility contract
// of the serving error bound — without the sort.
func (a *Accumulator) Sum() float64 {
	var total float64
	for i := range a.entries {
		total += a.entries[i].Score
	}
	return total
}

// ToVector materializes the accumulator as a public map-based Vector.
func (a *Accumulator) ToVector() Vector {
	out := New(len(a.entries))
	for _, e := range a.entries {
		out[e.Node] = e.Score
	}
	return out
}

// AddAccumulator folds other into a entry-wise (a += other) with a single
// linear merge. It is the sorted-slice analogue of Vector.AddVector.
func (a *Accumulator) AddAccumulator(other *Accumulator) {
	if len(other.entries) == 0 {
		return
	}
	out := a.scratch[:0]
	i := 0
	for _, e := range other.entries {
		for i < len(a.entries) && a.entries[i].Node < e.Node {
			out = append(out, a.entries[i])
			i++
		}
		if i < len(a.entries) && a.entries[i].Node == e.Node {
			out = append(out, Entry{Node: e.Node, Score: a.entries[i].Score + e.Score})
			i++
		} else {
			out = append(out, e)
		}
	}
	out = append(out, a.entries[i:]...)
	a.entries, a.scratch = out, a.entries
}

// AccumulateEncodedExtension folds scale times the extension vector of an
// encoded hub record into the accumulator: a += scale * ext(record), where
// ext applies the Theorem 4 self-loop correction inline — the owner hub's own
// entry contributes (score − alpha), and is dropped entirely when the
// corrected score falls below a small epsilon. This fuses
// prime.ExtensionVector (which clones the prime PPV) and Vector.AddScaled
// into one allocation-free pass over the record bytes. The per-node
// floating-point operation is identical (old + scale*score), so results are
// bit-equal to the map-based path.
func (a *Accumulator) AccumulateEncodedExtension(data []byte, scale float64, owner graph.NodeID, alpha float64) {
	n := len(data) / EncodedEntrySize
	if n == 0 {
		return
	}
	out := a.scratch[:0]
	i := 0
	for j := 0; j < n; j++ {
		node, score := EncodedEntryAt(data, j)
		if node == owner {
			score -= alpha
			if score <= extensionEpsilon {
				continue
			}
		}
		for i < len(a.entries) && a.entries[i].Node < node {
			out = append(out, a.entries[i])
			i++
		}
		if i < len(a.entries) && a.entries[i].Node == node {
			out = append(out, Entry{Node: node, Score: a.entries[i].Score + scale*score})
			i++
		} else {
			out = append(out, Entry{Node: node, Score: scale * score})
		}
	}
	out = append(out, a.entries[i:]...)
	a.entries, a.scratch = out, a.entries
}

// StageEncodedExtension appends scale times the extension vector of an
// encoded hub record to the staging buffer without merging: a Step expands
// many hubs, and merging each record into the growing increment immediately
// costs O(|increment|) per hub. Staging is O(|record|) per hub; Combine then
// folds everything staged with one stable sort. The owner self-loop
// correction is applied here, identically to AccumulateEncodedExtension.
//
// Callers must stage hubs in ascending owner order and call Combine before
// reading the accumulator: the stable sort keys on node id only, so the
// per-node contribution order (and with it bit-reproducibility against the
// sequential merge) is the staging order.
func (a *Accumulator) StageEncodedExtension(data []byte, scale float64, owner graph.NodeID, alpha float64) {
	n := len(data) / EncodedEntrySize
	for j := 0; j < n; j++ {
		node, score := EncodedEntryAt(data, j)
		if node == owner {
			score -= alpha
			if score <= extensionEpsilon {
				continue
			}
		}
		a.staged = append(a.staged, Entry{Node: node, Score: scale * score})
	}
}

// StageVectorExtension is StageEncodedExtension for a map-based prime PPV.
// Map iteration order does not matter here: a single hub record holds each
// node at most once, so the cross-hub per-node contribution order is fixed by
// the staging order of whole hubs, not by the order within one record.
func (a *Accumulator) StageVectorExtension(v Vector, scale float64, owner graph.NodeID, alpha float64) {
	//lint:ordered each node occurs once per staged record; Combine stable-sorts by node id, so duplicates fold in record order, not map order
	for id, s := range v {
		if id == owner {
			s -= alpha
			if s <= extensionEpsilon {
				continue
			}
		}
		a.staged = append(a.staged, Entry{Node: id, Score: scale * s})
	}
}

// Combine folds every staged contribution into the accumulator. Duplicated
// nodes are summed in staging order (stable sort), which reproduces the
// floating-point addition sequence of merging the staged hubs one at a time —
// the bit-reproducibility contract — at O(E log E) for E staged entries
// instead of O(hubs x |accumulator|).
func (a *Accumulator) Combine() {
	if len(a.staged) == 0 {
		return
	}
	sort.SliceStable(a.staged, func(i, j int) bool { return a.staged[i].Node < a.staged[j].Node })
	folded := a.tmp[:0]
	cur := a.staged[0]
	for _, e := range a.staged[1:] {
		if e.Node == cur.Node {
			cur.Score += e.Score
		} else {
			folded = append(folded, cur)
			cur = e
		}
	}
	folded = append(folded, cur)
	a.tmp = folded
	a.staged = a.staged[:0]

	if len(a.entries) == 0 {
		a.entries = append(a.entries[:0], folded...)
		return
	}
	out := a.scratch[:0]
	i := 0
	for _, e := range folded {
		for i < len(a.entries) && a.entries[i].Node < e.Node {
			out = append(out, a.entries[i])
			i++
		}
		if i < len(a.entries) && a.entries[i].Node == e.Node {
			out = append(out, Entry{Node: e.Node, Score: a.entries[i].Score + e.Score})
			i++
		} else {
			out = append(out, e)
		}
	}
	out = append(out, a.entries[i:]...)
	a.entries, a.scratch = out, a.entries
}

// AccumulateVectorExtension is AccumulateEncodedExtension for a map-based
// prime PPV: the fallback when a hub record is only available as a decoded
// Vector (in-memory indexes, overlay records, recompute-on-miss). The input
// is staged and sorted into an internal buffer before the merge.
func (a *Accumulator) AccumulateVectorExtension(v Vector, scale float64, owner graph.NodeID, alpha float64) {
	if len(v) == 0 {
		return
	}
	a.tmp = a.tmp[:0]
	//lint:ordered collect-then-sort: tmp is sorted by node id before merging
	for id, s := range v {
		if id == owner {
			s -= alpha
			if s <= extensionEpsilon {
				continue
			}
		}
		a.tmp = append(a.tmp, Entry{Node: id, Score: s})
	}
	sort.Slice(a.tmp, func(i, j int) bool { return a.tmp[i].Node < a.tmp[j].Node })
	out := a.scratch[:0]
	i := 0
	for _, e := range a.tmp {
		for i < len(a.entries) && a.entries[i].Node < e.Node {
			out = append(out, a.entries[i])
			i++
		}
		if i < len(a.entries) && a.entries[i].Node == e.Node {
			out = append(out, Entry{Node: e.Node, Score: a.entries[i].Score + scale*e.Score})
			i++
		} else {
			out = append(out, Entry{Node: e.Node, Score: scale * e.Score})
		}
	}
	out = append(out, a.entries[i:]...)
	a.entries, a.scratch = out, a.entries
}
