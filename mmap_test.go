package fastppv

import (
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"
)

// TestPublicAPIMmapDifferential is the equivalence bar of the zero-copy read
// path: the same index opened memory-mapped and pread must answer every query
// with the identical top-k ranking and bounds that agree to 1e-12.
func TestPublicAPIMmapDifferential(t *testing.T) {
	g := buildTestGraph(t, 400, 4, 41)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 40, path)

	open := func(mmap bool) (*Engine, func() error) {
		t.Helper()
		engine, closeIndex, err := OpenDiskIndexWithOptions(g, Options{NumHubs: 40}, path, DiskIndexOptions{
			BlockCacheBytes: 4 << 20,
			Mmap:            mmap,
		})
		if err != nil {
			t.Fatalf("OpenDiskIndexWithOptions(mmap=%v): %v", mmap, err)
		}
		return engine, closeIndex
	}
	mapped, closeMapped := open(true)
	defer closeMapped()
	pread, closePread := open(false)
	defer closePread()

	if active, ok := mmapActiveOf(mapped); ok && !active {
		t.Log("mmap unavailable on this platform; differential degrades to pread vs pread")
	}
	if active, ok := mmapActiveOf(pread); !ok || active {
		t.Fatalf("pread engine reports mmap active=%v ok=%v", active, ok)
	}

	for q := NodeID(0); q < 25; q++ {
		a, err := mapped.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("mmap query %d: %v", q, err)
		}
		b, err := pread.Query(q, DefaultStop())
		if err != nil {
			t.Fatalf("pread query %d: %v", q, err)
		}
		if math.Abs(a.L1ErrorBound-b.L1ErrorBound) > 1e-12 {
			t.Errorf("q=%d: bounds differ: mmap %v pread %v", q, a.L1ErrorBound, b.L1ErrorBound)
		}
		ta, tb := a.TopK(20), b.TopK(20)
		if len(ta) != len(tb) {
			t.Fatalf("q=%d: top-k lengths differ: %d vs %d", q, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i].Node != tb[i].Node {
				t.Fatalf("q=%d rank %d: node %d (mmap) vs %d (pread)", q, i, ta[i].Node, tb[i].Node)
			}
			if math.Abs(ta[i].Score-tb[i].Score) > 1e-12 {
				t.Errorf("q=%d rank %d: score %v (mmap) vs %v (pread)", q, i, ta[i].Score, tb[i].Score)
			}
		}
		if d := a.Estimate.L1Distance(b.Estimate); d > 1e-12 {
			t.Errorf("q=%d: estimates differ by %v between read modes", q, d)
		}
	}
}

// TestPublicAPIMmapCompactionDuringQueries runs concurrent queries against a
// memory-mapped index while a compaction atomically replaces (and remaps) the
// base file underneath them. Answers must not drift and nothing may fault:
// retired mappings drain their in-flight views before being unmapped. Run
// under -race in CI.
func TestPublicAPIMmapCompactionDuringQueries(t *testing.T) {
	g := buildTestGraph(t, 300, 4, 42)
	path := filepath.Join(t.TempDir(), "index.ppv")
	buildDiskIndex(t, g, 30, path)

	engine, closeIndex, err := OpenDiskIndexWithOptions(g, Options{NumHubs: 30}, path, DiskIndexOptions{
		BlockCacheBytes: 4 << 20,
		Mmap:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeIndex()
	from := engine.Hubs().Hubs()[0]
	if _, err := engine.ApplyUpdate(GraphUpdate{AddedEdges: []Edge{{From: from, To: 250}}}); err != nil {
		t.Fatal(err)
	}
	const probes = 16
	expected := make([]Vector, probes)
	for q := 0; q < probes; q++ {
		res, err := engine.Query(NodeID(q), DefaultStop())
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = res.Estimate
	}

	stop := make(chan struct{})
	errc := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := w; ; q = (q + 1) % probes {
				select {
				case <-stop:
					return
				default:
				}
				res, err := engine.Query(NodeID(q), DefaultStop())
				if err != nil {
					errc <- err
					return
				}
				if d := res.Estimate.L1Distance(expected[q]); d > 1e-12 {
					errc <- fmt.Errorf("query %d drifted by %v across a compaction remap", q, d)
					return
				}
			}
		}(w)
	}

	res := compactIndex(t, engine)
	if res.LogRecordsFolded == 0 {
		t.Error("compaction under load should have folded the update log")
	}

	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The freshly published generation is mapped again (on platforms with
	// mmap support).
	if active, ok := mmapActiveOf(engine); ok && !active {
		t.Log("post-compaction generation fell back to pread (mmap unsupported here)")
	}
}

// mmapActiveOf reports the index's read mode through the optional MmapActive
// surface the disk store exposes.
func mmapActiveOf(e *Engine) (active, ok bool) {
	m, ok := e.Index().(interface{ MmapActive() bool })
	if !ok {
		return false, false
	}
	return m.MmapActive(), true
}
