package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces verifies that concurrent identical requests share
// one in-flight computation. The leader blocks inside fn on a gate while the
// followers arrive; every caller that joined the flight must observe the
// leader's answer, and executions + coalesced must account for every caller.
func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var executions atomic.Int64

	want := fakeAnswer(10)
	// Both the leader and any follower that (unluckily) becomes its own
	// leader run the same gated fn, so results are identical either way and
	// the accounting identity below is exact.
	blockingFn := func(signal chan<- struct{}) func(func()) (*cachedAnswer, error) {
		return func(func()) (*cachedAnswer, error) {
			executions.Add(1)
			if signal != nil {
				close(signal)
			}
			<-gate
			return want, nil
		}
	}

	const callers = 17
	var wg sync.WaitGroup
	var sharedCount atomic.Int64

	wg.Add(1)
	go func() {
		defer wg.Done()
		ans, _, err := g.Do(key(1), blockingFn(leaderIn))
		if err != nil || ans != want {
			t.Errorf("leader: ans=%v err=%v", ans, err)
		}
	}()
	<-leaderIn // the computation is provably in flight

	entered := make(chan struct{}, callers-1)
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered <- struct{}{}
			ans, sh, err := g.Do(key(1), blockingFn(nil))
			if err != nil || ans != want {
				t.Errorf("follower %d: ans=%v err=%v", i, ans, err)
			}
			if sh {
				sharedCount.Add(1)
			}
		}(i)
	}
	for i := 1; i < callers; i++ {
		<-entered
	}
	// Give the followers a moment to reach the flight group before opening
	// the gate; any straggler simply runs the same gated fn and is counted by
	// the executions/coalesced identity.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got, want := executions.Load()+sharedCount.Load(), int64(callers); got != want {
		t.Fatalf("executions %d + shared %d = %d, want %d callers",
			executions.Load(), sharedCount.Load(), got, want)
	}
	if sharedCount.Load() == 0 {
		t.Fatal("no request was coalesced despite a gated in-flight leader")
	}
	if g.Coalesced() != sharedCount.Load() {
		t.Fatalf("Coalesced() = %d, want %d", g.Coalesced(), sharedCount.Load())
	}
}

// TestFlightGroupDistinctKeys verifies independent keys do not serialize or
// cross answers.
func TestFlightGroupDistinctKeys(t *testing.T) {
	g := newFlightGroup()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, sh, err := g.Do(key(i), func(func()) (*cachedAnswer, error) {
				return fakeAnswer(int64(i + 1)), nil
			})
			if err != nil || sh {
				t.Errorf("key %d: err=%v shared=%v", i, err, sh)
			}
			if ans.bytes != int64(i+1) {
				t.Errorf("key %d: got answer for another key", i)
			}
		}(i)
	}
	wg.Wait()
	if g.Coalesced() != 0 {
		t.Errorf("Coalesced() = %d, want 0", g.Coalesced())
	}
}
