package server

import (
	"container/list"
	"hash/maphash"
	"math"
	"sync"

	"fastppv/internal/core"
	"fastppv/internal/graph"
	"fastppv/internal/querylog"
)

// CacheKey identifies one cacheable answer: the query node together with the
// accuracy knobs that shaped it. Two requests with the same key are
// exchangeable, so the cached answer is byte-identical to recomputing.
type CacheKey struct {
	Node        graph.NodeID
	Eta         int
	TargetError float64
	// Epoch is the cluster index epoch the answer belongs to (router mode
	// only; engine mode invalidates by hub dependency instead and leaves it
	// zero). Keying on it makes an accepted update instantly retire every
	// pre-update answer — lookups move to the new epoch and the old entries
	// age out — and keeps a post-update request from coalescing onto a
	// pre-update flight.
	Epoch uint64
}

// cachedAnswer is a fully computed query answer held by the cache and shared
// by coalesced requests. The result (including its estimate) is immutable
// once stored.
type cachedAnswer struct {
	result *core.Result
	// deps are the hubs whose indexed prime PPV the computation consumed, in
	// ascending order (core.QueryState.HubDeps); invalidation is keyed on them.
	deps []graph.NodeID
	// degraded marks answers produced by the admission-control degradation
	// path or by a cluster that lost shards mid-query; they answer with less
	// accuracy than a healthy full-service computation and are never cached.
	degraded bool
	// shardsDown, shardsBehind and lostMass describe cluster degradation
	// (router mode only): how many shards were unavailable, how many answered
	// at a divergent index epoch and were folded out, and how much frontier
	// mass went unexpanded because of either.
	shardsDown   int
	shardsBehind int
	lostMass     float64
	// epoch is the index epoch the answer was computed against (the engine's
	// own locally, the cluster epoch in router mode), recorded in the query
	// log.
	epoch uint64
	// traceID is set when the always-on capturer retained this computation's
	// trace (slow, degraded, sampled, or explicitly traced); it travels back
	// in the X-Fastppv-Trace response header so a caller that just saw a slow
	// answer can fetch /v1/debug/trace/{id}. slow records the slow-threshold
	// verdict for the query log.
	traceID string
	slow    bool
	// legs are the per-shard sub-request summaries of a router-mode answer,
	// recorded in the query log.
	legs []querylog.LegSummary
	// bytes is the estimated memory footprint used for budget accounting.
	bytes int64
}

// sizeBytes estimates the footprint of an answer: the sparse estimate and the
// per-iteration stats dominate; constants cover struct overheads.
func (a *cachedAnswer) sizeBytes() int64 {
	const (
		fixed        = 160 // Result + list/map bookkeeping
		perEntry     = 16  // map entry: NodeID + float64 + bucket overhead share
		perIteration = 64  // IterationStat
		perDep       = 8
	)
	return fixed +
		int64(a.result.Estimate.NonZeros())*perEntry +
		int64(len(a.result.PerIteration))*perIteration +
		int64(len(a.deps))*perDep
}

// CacheStats is a point-in-time summary of the cache, aggregated over shards.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// Cache is a sharded LRU over query answers with a global byte budget split
// evenly across shards. Sharding keeps lock contention off the hot query path
// under concurrent load; each shard is an independent mutex + LRU list.
type Cache struct {
	shards []*cacheShard
	seed   maphash.Seed
	budget int64
}

type cacheShard struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	lru    *list.List // front = most recently used; values are *cacheEntry
	byKey  map[CacheKey]*list.Element

	hits, misses, puts, evictions, invalidations int64
}

type cacheEntry struct {
	key CacheKey
	ans *cachedAnswer
}

// NewCache creates a cache with the given total byte budget across numShards
// shards. A non-positive budget or shard count falls back to defaults.
func NewCache(budgetBytes int64, numShards int) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 20
	}
	if numShards <= 0 {
		numShards = 16
	}
	c := &Cache{
		shards: make([]*cacheShard, numShards),
		seed:   maphash.MakeSeed(),
		budget: budgetBytes,
	}
	perShard := budgetBytes / int64(numShards)
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			budget: perShard,
			lru:    list.New(),
			byKey:  make(map[CacheKey]*list.Element),
		}
	}
	return c
}

func (c *Cache) shardFor(k CacheKey) *cacheShard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteByte(byte(k.Node))
	h.WriteByte(byte(k.Node >> 8))
	h.WriteByte(byte(k.Node >> 16))
	h.WriteByte(byte(k.Node >> 24))
	h.WriteByte(byte(k.Eta))
	// TargetError is part of the key, so it must be part of the hash: keys
	// differing only in target error would otherwise all land on one shard
	// and serialize on its mutex.
	te := math.Float64bits(k.TargetError)
	for i := 0; i < 8; i++ {
		h.WriteByte(byte(te >> (8 * i)))
	}
	for i := 0; i < 8; i++ {
		h.WriteByte(byte(k.Epoch >> (8 * i)))
	}
	return c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Get returns the cached answer for k, promoting it to most recently used.
func (c *Cache) Get(k CacheKey) (*cachedAnswer, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// Put stores the answer for k, replacing any previous entry, and evicts from
// the least recently used end until the shard is back under budget. Answers
// larger than a whole shard budget are not cached at all.
func (c *Cache) Put(k CacheKey, ans *cachedAnswer) {
	if ans.bytes == 0 {
		ans.bytes = ans.sizeBytes()
	}
	s := c.shardFor(k)
	if ans.bytes > s.budget {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// puts counts every successful store, replacements included; counting
	// only inserts would make hit-ratio accounting drift on workloads that
	// refresh existing keys.
	s.puts++
	if el, ok := s.byKey[k]; ok {
		old := el.Value.(*cacheEntry)
		s.bytes -= old.ans.bytes
		old.ans = ans
		s.bytes += ans.bytes
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&cacheEntry{key: k, ans: ans})
		s.byKey[k] = el
		s.bytes += ans.bytes
	}
	for s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.evictions++
	}
}

func (s *cacheShard) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	delete(s.byKey, ent.key)
	s.bytes -= ent.ans.bytes
}

// Invalidate removes every entry for which stale returns true and reports how
// many were dropped. It is called under the server's update lock, so no new
// stale entries can be inserted concurrently.
func (c *Cache) Invalidate(stale func(CacheKey, *cachedAnswer) bool) int {
	dropped := 0
	for _, s := range c.shards {
		s.mu.Lock()
		var next *list.Element
		for el := s.lru.Front(); el != nil; el = next {
			next = el.Next()
			ent := el.Value.(*cacheEntry)
			if stale(ent.key, ent.ans) {
				s.removeLocked(el)
				s.invalidations++
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.byKey)
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-shard counters.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	st.BudgetBytes = c.budget
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Puts += s.puts
		st.Evictions += s.evictions
		st.Invalidations += s.invalidations
		st.Entries += len(s.byKey)
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}
