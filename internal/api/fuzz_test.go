package api

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"fastppv/internal/sparse"
)

// FuzzBinaryFrame feeds arbitrary bytes to the FPS1 frame reader. The framing
// contract: a clean EOF at a frame boundary is io.EOF, everything else that
// fails wraps ErrBadFrame, and a frame that decodes re-encodes to the exact
// consumed bytes. Payloads of known frame types additionally go through their
// message decoders, which must return structured errors (never panic) and
// reach a canonical encode/decode fixed point when they accept the payload.
func FuzzBinaryFrame(f *testing.F) {
	var valid bytes.Buffer
	if _, err := WriteFrame(&valid, FrameCancel, EncodeCancel(7, 0xDEADBEEF)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FPS1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ftype, payload, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			if err != io.EOF && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("ReadFrame returned unstructured error %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("ReadFrame consumed %d of %d bytes", n, len(data))
		}
		var re bytes.Buffer
		if _, werr := WriteFrame(&re, ftype, payload); werr != nil {
			t.Fatalf("re-encoding a decoded frame failed: %v", werr)
		}
		if !bytes.Equal(re.Bytes(), data[:n]) {
			t.Fatalf("frame round trip mismatch: got %x want %x", re.Bytes(), data[:n])
		}
		checkPayloadFixedPoint(t, ftype, payload)
	})
}

// checkPayloadFixedPoint runs the typed message decoder over an accepted
// frame payload. A rejected payload is fine; an accepted one must reach a
// canonical fixed point: encode(decode(p)) re-decodes and re-encodes to
// byte-identical output.
func checkPayloadFixedPoint(t *testing.T, ftype byte, payload []byte) {
	t.Helper()
	switch ftype {
	case FramePartialRequest:
		id, traceID, preq, err := DecodePartialRequest(payload)
		if err != nil {
			return
		}
		p2, err := EncodePartialRequest(id, traceID, preq)
		if err != nil {
			t.Fatalf("re-encoding a decoded partial request failed: %v", err)
		}
		id3, trace3, preq3, err := DecodePartialRequest(p2)
		if err != nil {
			t.Fatalf("decoding a re-encoded partial request failed: %v", err)
		}
		p3, err := EncodePartialRequest(id3, trace3, preq3)
		if err != nil || !bytes.Equal(p2, p3) {
			t.Fatalf("partial request did not reach an encode fixed point (err=%v)", err)
		}
	case FramePartialResponse:
		id, presp, err := DecodePartialResponse(payload)
		if err != nil {
			return
		}
		p2, err := EncodePartialResponse(id, presp)
		if err != nil {
			t.Fatalf("re-encoding a decoded partial response failed: %v", err)
		}
		id3, presp3, err := DecodePartialResponse(p2)
		if err != nil {
			t.Fatalf("decoding a re-encoded partial response failed: %v", err)
		}
		p3, err := EncodePartialResponse(id3, presp3)
		if err != nil || !bytes.Equal(p2, p3) {
			t.Fatalf("partial response did not reach an encode fixed point (err=%v)", err)
		}
	case FrameError:
		id, e, err := DecodeError(payload)
		if err != nil {
			return
		}
		p2 := EncodeError(id, e)
		id3, e3, err := DecodeError(p2)
		if err != nil {
			t.Fatalf("decoding a re-encoded error failed: %v", err)
		}
		if !bytes.Equal(p2, EncodeError(id3, e3)) {
			t.Fatal("error message did not reach an encode fixed point")
		}
	case FrameCancel:
		id, hash, err := DecodeCancel(payload)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeCancel(id, hash), payload) {
			t.Fatal("cancel message round trip mismatch")
		}
	}
}

// FuzzVectorRoundTrip drives the wire-vector codec from raw bytes: the input
// is chopped into (node, score) entries, encoded, decoded, and compared
// bit-for-bit. Encoding sorts by node id and a map collapses duplicate ids,
// so the invariant is the canonical fixed point encode(decode(encode(v))) ==
// encode(v), plus exact score-bit preservation per surviving node.
func FuzzVectorRoundTrip(f *testing.F) {
	seed := make([]byte, 2*sparse.EncodedEntrySize)
	sparse.PutEncodedEntry(seed, 3, 0.5)
	sparse.PutEncodedEntry(seed[sparse.EncodedEntrySize:], 9, math.SmallestNonzeroFloat64)
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / sparse.EncodedEntrySize
		v := sparse.New(n)
		for i := 0; i < n; i++ {
			id, s := sparse.EncodedEntryAt(data[:n*sparse.EncodedEntrySize], i)
			v[id] = s
		}
		w := EncodeVector(v)
		back, err := w.Decode()
		if err != nil {
			t.Fatalf("decoding an encoded vector failed: %v", err)
		}
		if len(back) != len(v) {
			t.Fatalf("round trip changed entry count: %d != %d", len(back), len(v))
		}
		for id, s := range v {
			got, ok := back[id]
			if !ok || math.Float64bits(got) != math.Float64bits(s) {
				t.Fatalf("node %d: score %x round-tripped to %x (present=%v)",
					id, math.Float64bits(s), math.Float64bits(got), ok)
			}
		}
		w2 := EncodeVector(back)
		if len(w2.Nodes) != len(w.Nodes) {
			t.Fatal("re-encoding changed the wire length")
		}
		for i := range w.Nodes {
			if w2.Nodes[i] != w.Nodes[i] || math.Float64bits(w2.Scores[i]) != math.Float64bits(w.Scores[i]) {
				t.Fatalf("wire entry %d not canonical across re-encode", i)
			}
		}
		// Decode must also reject mismatched parallel slices structurally.
		if len(w.Nodes) > 0 {
			if _, err := (Vector{Nodes: w.Nodes, Scores: w.Scores[:len(w.Scores)-1]}).Decode(); err == nil {
				t.Fatal("Decode accepted mismatched node/score lengths")
			}
		}
	})
}
