package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fastppv_test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	g := r.Gauge("fastppv_test_gauge", "a gauge")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %v, want 2.5", got)
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("fastppv_conflict", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind should panic")
		}
	}()
	r.Gauge("fastppv_conflict", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	r.Counter("fastppv-bad-name", "hyphens are not allowed")
}

func TestVecChildReuse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fastppv_requests_total", "requests", "endpoint")
	a1 := v.With("ppv")
	a2 := v.With("ppv")
	if a1 != a2 {
		t.Fatal("With should return the same child for the same label values")
	}
	a1.Inc()
	a2.Inc()
	if got := a1.Value(); got != 2 {
		t.Fatalf("shared child value = %v, want 2", got)
	}
	b := v.With("stats")
	if b == a1 {
		t.Fatal("different label values must resolve to different children")
	}
}

func TestVecWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fastppv_labeled_total", "labeled", "endpoint", "code")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label value count should panic")
		}
	}()
	v.With("ppv")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fastppv_a_total", "counts things").Add(3)
	r.Gauge("fastppv_b", "measures things").Set(1.5)
	v := r.CounterVec("fastppv_c_total", "labelled", "endpoint")
	v.With("ppv").Inc()
	v.With("batch").Add(2)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP fastppv_a_total counts things\n",
		"# TYPE fastppv_a_total counter\n",
		"fastppv_a_total 3\n",
		"# TYPE fastppv_b gauge\n",
		"fastppv_b 1.5\n",
		`fastppv_c_total{endpoint="ppv"} 1` + "\n",
		`fastppv_c_total{endpoint="batch"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	validatePrometheusText(t, out)
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fastppv_escape_total", "help with \\ backslash\nand newline", "path")
	v.With("a\\b\"c\nd").Inc()

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	if !strings.Contains(out, "# HELP fastppv_escape_total help with \\\\ backslash\\nand newline\n") {
		t.Errorf("HELP text not escaped:\n%s", out)
	}
	if !strings.Contains(out, `fastppv_escape_total{path="a\\b\"c\nd"} 1`+"\n") {
		t.Errorf("label value not escaped:\n%s", out)
	}
	validatePrometheusText(t, out)
}

func TestWritePrometheusSpecialFloats(t *testing.T) {
	r := NewRegistry()
	r.Gauge("fastppv_pinf", "h").Set(math.Inf(1))
	r.Gauge("fastppv_ninf", "h").Set(math.Inf(-1))
	r.Gauge("fastppv_nan", "h").Set(math.NaN())

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{"fastppv_pinf +Inf\n", "fastppv_ninf -Inf\n", "fastppv_nan NaN\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fastppv_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE fastppv_lat_seconds histogram\n",
		`fastppv_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`fastppv_lat_seconds_bucket{le="1"} 2` + "\n",
		`fastppv_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"fastppv_lat_seconds_sum 5.55\n",
		"fastppv_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	validatePrometheusText(t, out)
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("fastppv_leg_seconds", "leg latency", []float64{0.01}, "shard")
	v.With("0").Observe(0.001)
	v.With("1").Observe(1)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`fastppv_leg_seconds_bucket{shard="0",le="0.01"} 1`,
		`fastppv_leg_seconds_bucket{shard="1",le="0.01"} 0`,
		`fastppv_leg_seconds_bucket{shard="1",le="+Inf"} 1`,
		`fastppv_leg_seconds_count{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	validatePrometheusText(t, out)
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(e *Emitter) {
		e.Gauge("fastppv_cache_entries", "entries resident", 42)
		e.Counter("fastppv_cache_hits_total", "hits", 7, L("tier", "memory"))
	})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE fastppv_cache_entries gauge\n",
		"fastppv_cache_entries 42\n",
		`fastppv_cache_hits_total{tier="memory"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- got ---\n%s", want, out)
		}
	}
	validatePrometheusText(t, out)
}

func TestConcurrentVecResolution(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fastppv_conc_total", "concurrent", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v.With("same").Inc()
			}
		}()
	}
	wg.Wait()
	if got := v.With("same").Value(); got != 4000 {
		t.Fatalf("concurrent counter = %v, want 4000", got)
	}
}

// validatePrometheusText is a minimal structural parser for the 0.0.4 text
// format: every non-comment line must be `name{labels} value` or `name value`,
// and every samples name must have seen a preceding TYPE header.
func validatePrometheusText(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition output", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !typed[base] {
			t.Fatalf("line %d: sample %q has no TYPE header", ln+1, name)
		}
		if _, err := parseFloatValue(line[sp+1:]); err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
	}
}

func parseFloatValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.001, 1})
	h.ObserveDuration(500 * time.Millisecond)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("500ms should land in the (0.001, 1] bucket, got %v", s.Counts)
	}
}
