package server

import (
	"sync"
	"sync/atomic"
)

// flightGroup coalesces concurrent identical requests: while a computation
// for a key is in flight, later arrivals for the same key block on it and
// share its answer instead of recomputing. This is the request-collapsing
// half of the serving layer — under a skewed workload a popular query that
// misses the cache is still computed once, not once per concurrent caller.
type flightGroup struct {
	mu        sync.Mutex
	calls     map[CacheKey]*flightCall
	coalesced atomic.Int64
}

type flightCall struct {
	done chan struct{}
	ans  *cachedAnswer
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[CacheKey]*flightCall)}
}

// Do runs fn for key, ensuring only one execution is in flight per key at a
// time. The boolean reports whether this caller shared another caller's
// computation instead of running fn itself.
//
// fn receives an idempotent unregister callback that removes the flight from
// the group early. The server calls it while still holding the engine read
// lock: once a graph update acquires the write lock, no completed pre-update
// flight is joinable any more, so a request arriving after an update can
// never coalesce onto a stale answer. (Followers that joined earlier arrived
// before the update completed, so sharing the pre-update answer with them is
// consistent.) Do also unregisters after fn returns as a safety net.
func (g *flightGroup) Do(key CacheKey, fn func(unregister func()) (*cachedAnswer, error)) (*cachedAnswer, bool, error) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-call.done
		g.coalesced.Add(1)
		return call.ans, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	unregister := func() {
		g.mu.Lock()
		if g.calls[key] == call {
			delete(g.calls, key)
		}
		g.mu.Unlock()
	}
	call.ans, call.err = fn(unregister)
	unregister()
	close(call.done)

	return call.ans, false, call.err
}

// Coalesced returns how many requests were answered by sharing an in-flight
// computation.
func (g *flightGroup) Coalesced() int64 { return g.coalesced.Load() }
