package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
	"fastppv/internal/ppvindex"
	"fastppv/internal/prime"
	"fastppv/internal/sparse"
)

// IndexStore is the combination of read and write access the engine needs for
// its PPV index. Both ppvindex.MemIndex and the pair DiskWriter/DiskIndex
// satisfy the relevant halves; NewEngine defaults to an in-memory index.
type IndexStore interface {
	ppvindex.Index
	ppvindex.Writer
}

// OfflineStats summarizes one offline precomputation run; the offline cost
// experiments (Fig. 7b/c, 9, 11, 15) read these counters.
type OfflineStats struct {
	// Hubs is |H|, the number of hubs selected and indexed.
	Hubs int
	// HubSelection is the wall time of hub scoring and selection (including
	// global PageRank when the policy needs it).
	HubSelection time.Duration
	// PrimePPV is the wall time of computing and storing all hub prime PPVs.
	PrimePPV time.Duration
	// Total is HubSelection + PrimePPV.
	Total time.Duration
	// IndexBytes is the size of the resulting PPV index.
	IndexBytes int64
	// IndexEntries is the total number of stored (node, score) pairs.
	IndexEntries int64
	// Pushes is the total expansion work across all prime PPVs.
	Pushes int64
	// ClippedEntries counts entries dropped by the storage clip.
	ClippedEntries int64
}

// Engine is a FastPPV instance bound to one graph: it owns the hub set and
// the PPV index produced by Precompute and answers online queries against
// them. An Engine is safe for concurrent queries after Precompute has
// completed.
type Engine struct {
	g     *graph.Graph
	opts  Options
	hubs  *hub.Set
	index IndexStore
	// viewIndex is non-nil when index can serve hub records as zero-copy
	// views (disk-backed stores); the query hot loop then folds record bytes
	// straight into the estimate accumulator, falling back to index.Get for
	// overlay/missing hubs.
	viewIndex ppvindex.ViewGetter

	offline     OfflineStats
	precomputed bool

	// epoch counts the graph-update batches folded into the engine's state:
	// it starts at Options.InitialEpoch (the batches already replayed into the
	// supplied graph, e.g. from a graph-mutation log) and ApplyUpdate bumps it
	// once per committed batch. Two replicas that applied the same update
	// sequence report the same epoch, which is what lets a cluster router
	// detect a replica serving a different graph. Atomic so stats and the
	// partial-query path can read it without the serving layer's update lock.
	epoch atomic.Uint64
}

// NewEngine creates an engine over g with the given options, storing prime
// PPVs in the provided index (a fresh in-memory index when index is nil).
// Call Precompute before Query.
func NewEngine(g *graph.Graph, index IndexStore, opts Options) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if index == nil {
		index = ppvindex.NewMemIndex()
	}
	e := &Engine{g: g, opts: opts, index: index}
	e.viewIndex, _ = index.(ppvindex.ViewGetter)
	e.epoch.Store(opts.InitialEpoch)
	return e, nil
}

// NewServingEngine creates an engine that answers queries from an existing,
// already precomputed index — the disk-based serving configuration of
// Sect. 5.3, where the offline phase ran in a separate process and the daemon
// only opens the index file. The hub set is recovered from the index
// directory, the engine is immediately query-ready (Precomputed reports
// true), and ApplyUpdate maintains the index through its Put method.
//
// opts must match the options the index was precomputed with (Alpha in
// particular — the stored prime PPVs embed it); the index format does not
// record them, so this cannot be verified here.
//
// When opts.Partition is sharded, the index holds only the hubs this shard
// owns, but prime-subgraph semantics need the full hub set (stored PPVs block
// at every hub). Hub selection is therefore re-run — it is deterministic given
// the graph and options — and every indexed hub is checked to be a selected
// hub owned by this shard, so opening the wrong shard's file or a file built
// with different options fails instead of serving silently wrong partials.
func NewServingEngine(g *graph.Graph, index IndexStore, opts Options) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if index == nil || index.Len() == 0 {
		return nil, fmt.Errorf("core: serving engine needs a non-empty precomputed index")
	}
	hubNodes := index.Hubs()
	for _, h := range hubNodes {
		if h < 0 || int(h) >= g.NumNodes() {
			return nil, fmt.Errorf("core: index/graph mismatch: indexed hub %d outside [0,%d)", h, g.NumNodes())
		}
	}
	hubSet := hub.NewSet(hubNodes)
	if opts.Partition.Enabled() {
		hubSet, err = selectHubs(g, opts)
		if err != nil {
			return nil, fmt.Errorf("core: recovering the full hub set for shard %s: %w", opts.Partition, err)
		}
		for _, h := range hubNodes {
			if !hubSet.Contains(h) {
				return nil, fmt.Errorf("core: indexed hub %d is not a selected hub; the index was built with different options", h)
			}
			if !opts.Partition.Owns(h) {
				return nil, fmt.Errorf("core: indexed hub %d belongs to shard %d, not %s; wrong shard index file",
					h, opts.Partition.Owner(h), opts.Partition)
			}
		}
	}
	e := &Engine{
		g:           g,
		opts:        opts,
		hubs:        hubSet,
		index:       index,
		precomputed: true,
	}
	e.viewIndex, _ = index.(ppvindex.ViewGetter)
	e.epoch.Store(opts.InitialEpoch)
	e.offline = OfflineStats{
		Hubs:         len(hubNodes),
		IndexBytes:   index.SizeBytes(),
		IndexEntries: ppvindex.StatsOf(index).TotalEntries,
	}
	return e, nil
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Hubs returns the hub set selected by Precompute (nil before Precompute).
func (e *Engine) Hubs() *hub.Set { return e.hubs }

// Index returns the PPV index.
func (e *Engine) Index() ppvindex.Index { return e.index }

// Options returns the engine options after defaulting.
func (e *Engine) Options() Options { return e.opts }

// Partition returns the hub partition this engine serves (zero value when
// unsharded).
func (e *Engine) Partition() Partition { return e.opts.Partition }

// Epoch returns the engine's index epoch: the number of graph-update batches
// folded into the graph and index it serves (including Options.InitialEpoch
// batches replayed before the engine was created).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// OfflineStats returns the statistics of the last Precompute run.
func (e *Engine) OfflineStats() OfflineStats { return e.offline }

// Precomputed reports whether Precompute has completed, i.e. the engine is
// ready to answer queries. Long-lived servers use it as their readiness check.
func (e *Engine) Precomputed() bool { return e.precomputed }

// selectHubs runs hub selection for g under opts. It is deterministic given
// (graph, options), which sharded serving relies on: every shard and every
// reopen of a shard index recovers the same full hub set.
func selectHubs(g *graph.Graph, opts Options) (*hub.Set, error) {
	numHubs := opts.NumHubs
	if numHubs == 0 {
		numHubs = hub.SuggestHubCount(g, 0, 0)
	}
	hubs, err := hub.Select(g, hub.Options{
		Policy:          opts.HubPolicy,
		Count:           numHubs,
		PageRank:        opts.PageRank,
		PageRankOptions: pagerank.Options{Alpha: opts.Alpha},
		Seed:            opts.HubSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: hub selection: %w", err)
	}
	return hubs, nil
}

// Precompute runs the offline phase (Algorithm 1): select |H| hubs by the
// configured policy and compute and store the prime PPV of every hub. It can
// be called again after the options or graph change; the index is refilled.
//
// With a sharded Partition, selection still covers the full hub set but only
// the prime PPVs of the hubs this shard owns are computed and stored — the
// per-shard offline cost and index size shrink by the shard count.
func (e *Engine) Precompute() error {
	start := time.Now()

	hubs, err := selectHubs(e.g, e.opts)
	if err != nil {
		return err
	}
	e.hubs = hubs
	selectionDone := time.Now()

	toCompute := hubs.Hubs()
	if e.opts.Partition.Enabled() {
		owned := make([]graph.NodeID, 0, len(toCompute)/e.opts.Partition.Shards+1)
		for _, h := range toCompute {
			if e.opts.Partition.Owns(h) {
				owned = append(owned, h)
			}
		}
		toCompute = owned
	}
	stats, err := e.computeHubPPVs(toCompute)
	if err != nil {
		return err
	}

	e.offline = stats
	e.offline.Hubs = len(toCompute)
	e.offline.HubSelection = selectionDone.Sub(start)
	e.offline.PrimePPV = time.Since(selectionDone)
	e.offline.Total = time.Since(start)
	e.offline.IndexBytes = e.index.SizeBytes()
	e.offline.IndexEntries = ppvindex.StatsOf(e.index).TotalEntries
	e.precomputed = true
	return nil
}

// computeHubPPVs computes and stores the prime PPVs for the given hub nodes
// using a worker pool; index writes are serialized.
func (e *Engine) computeHubPPVs(hubNodes []graph.NodeID) (OfflineStats, error) {
	var stats OfflineStats

	workers := e.opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(hubNodes) {
		workers = len(hubNodes)
	}
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan graph.NodeID)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards index writes and stats
		firstErr error
	)
	worker := func() {
		defer wg.Done()
		for h := range jobs {
			ppv, pstats, err := prime.ComputePPV(e.g, h, e.hubs, e.opts.primeOptions())
			var clipped int
			if err == nil && e.opts.Clip > 0 {
				clipped = ppv.Clip(e.opts.Clip)
			}
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("core: prime PPV of hub %d: %w", h, err)
				}
			} else if firstErr == nil {
				if err := e.index.Put(h, ppv); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("core: indexing hub %d: %w", h, err)
				}
				stats.Pushes += int64(pstats.Pushes)
				stats.ClippedEntries += int64(clipped)
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	for _, h := range hubNodes {
		jobs <- h
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// ExactPPV computes the exact PPV of q on the engine's graph with the
// engine's alpha. It is exposed for evaluation and examples; it is orders of
// magnitude slower than Query on large graphs.
func (e *Engine) ExactPPV(q graph.NodeID) (sparse.Vector, error) {
	return pagerank.ExactPPV(e.g, q, pagerank.Options{Alpha: e.opts.Alpha})
}
