// Command ppvlint is the repo's custom static-analysis multichecker: it runs
// the internal/lint analyzers (maporder, framesafe, poolhygiene, errcode,
// metriclit) over the packages matching the given patterns and exits
// non-zero when any invariant is violated.
//
//	go run ./cmd/ppvlint ./...
//	go run ./cmd/ppvlint -analyzers maporder,framesafe ./internal/sparse
//
// The analyzers encode repo-specific invariants — deterministic iteration in
// answer-affecting packages, length-checked decoding of the framed formats,
// pool reset hygiene, the structured error envelope, and a statically
// enumerable metric surface — that no general-purpose linter can know about.
// CI runs it alongside go vet and staticcheck; see README "Static analysis &
// fuzzing".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fastppv/internal/lint"
)

func main() {
	var only string
	flag.StringVar(&only, "analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ppvlint [-analyzers a,b] packages...\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ppvlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := d.Position
		rel := pos.Filename
		if r, err := relPath(wd, pos.Filename); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ppvlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func relPath(base, target string) (string, error) {
	if !strings.HasPrefix(target, base) {
		return target, nil
	}
	return strings.TrimPrefix(strings.TrimPrefix(target, base), string(os.PathSeparator)), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppvlint:", err)
	os.Exit(1)
}
