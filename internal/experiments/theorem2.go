package experiments

import (
	"math"

	"fastppv/internal/core"
	"fastppv/internal/workload"
)

// BoundPoint compares the measured accuracy-aware L1 error phi(k) after
// iteration k against Theorem 2's analytical bound (1-alpha)^(k+2), averaged
// over the query workload.
type BoundPoint struct {
	Dataset      DatasetName
	Iteration    int
	MeasuredPhi  float64
	TheoremBound float64
}

// Theorem2 measures the error decay of the incremental approximation and
// compares it with the exponential bound of Theorem 2 (E13 in DESIGN.md).
// The measured error should always stay below the bound and typically decays
// considerably faster, as the paper notes after the proof.
func Theorem2(scale Scale, maxIteration int) ([]BoundPoint, error) {
	if maxIteration <= 0 {
		maxIteration = 8
	}
	var out []BoundPoint
	for _, name := range []DatasetName{DBLP, LiveJournal} {
		d, err := Load(name, scale)
		if err != nil {
			return nil, err
		}
		engine, err := buildFastPPV(d, FastPPVConfig{
			NumHubs: d.DefaultHubs(),
			// Theorem 2 is about the partitioning scheme alone, so the lossy
			// engineering knobs (delta prune, storage clip) are disabled; with
			// them enabled the measured phi would floor at the discarded mass.
			Options: core.Options{Delta: -1, Clip: -1},
		})
		if err != nil {
			return nil, err
		}
		alpha := engine.Options().Alpha
		sums := make([]float64, maxIteration+1)
		for _, q := range d.Queries {
			qs, err := engine.NewQuery(q)
			if err != nil {
				return nil, err
			}
			for k := 0; k <= maxIteration; k++ {
				sums[k] += qs.L1ErrorBound()
				qs.Step()
			}
		}
		for k := 0; k <= maxIteration; k++ {
			out = append(out, BoundPoint{
				Dataset:      name,
				Iteration:    k,
				MeasuredPhi:  sums[k] / float64(len(d.Queries)),
				TheoremBound: math.Pow(1-alpha, float64(k+2)),
			})
		}
	}
	return out, nil
}

// Theorem2Table renders the measured-versus-bound comparison.
func Theorem2Table(points []BoundPoint) *workload.Table {
	t := workload.NewTable(
		"Theorem 2 — measured L1 error versus the analytical bound (1-alpha)^(k+2)",
		"Dataset", "k", "Measured phi(k)", "Bound")
	for _, p := range points {
		t.AddRow(string(p.Dataset), p.Iteration, p.MeasuredPhi, p.TheoremBound)
	}
	return t
}
