package core

import (
	"fmt"
	"sort"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/prime"
	"fastppv/internal/sparse"
)

// GraphUpdate describes a batch of edge insertions and deletions applied to
// the engine's graph. Node identifiers must already exist; adding nodes is
// expressed by growing NumNodes (new isolated nodes become valid targets of
// added edges).
type GraphUpdate struct {
	// AddedEdges are edges to insert (interpreted as logical edges: a single
	// entry on an undirected graph adds both orientations).
	AddedEdges []graph.Edge
	// RemovedEdges are edges to delete. On an undirected graph either
	// orientation identifies the edge.
	RemovedEdges []graph.Edge
	// NumNodes, when larger than the current node count, grows the node set.
	NumNodes int
}

// UpdateStats reports the cost of an incremental index maintenance pass.
type UpdateStats struct {
	// AffectedHubs is the number of hubs whose prime PPV was recomputed.
	AffectedHubs int
	// UnaffectedHubs is the number of hubs whose indexed prime PPV was kept.
	UnaffectedHubs int
	// Recomputed lists the recomputed hubs in ascending order; result caches
	// invalidate every cached answer that depends on one of them.
	Recomputed []graph.NodeID
	// TouchedNodes lists, in ascending order, the nodes whose outgoing
	// transition behaviour changed. A cached answer whose estimate reaches one
	// of these nodes may be stale even if it expanded no recomputed hub (its
	// own prime PPV was computed on the fly over the old graph).
	TouchedNodes []graph.NodeID
	// Epoch is the engine's index epoch after this update committed.
	Epoch uint64
	// Duration is the wall time of the whole update.
	Duration time.Duration
}

// UpdateCommitter is implemented by index stores that stage incremental
// update writes durably (e.g. behind a write-ahead log) and need an explicit
// commit: ApplyUpdate calls CommitUpdates exactly once, after every staged
// Put of one update has been handed to the store, so the store can make the
// whole batch durable with a single fsync. Stores without durability concerns
// (the in-memory index) simply don't implement it.
type UpdateCommitter interface {
	CommitUpdates() error
}

// GraphUpdateLogger is implemented by index stores that persist the graph
// mutations themselves (fastppv's disk store, behind a graph-mutation log):
// ApplyUpdate hands the batch over after every staged Put and before
// CommitUpdates, so the store can make the recomputed PPVs and the mutation
// that caused them durable in the same commit. Reopening such a store replays
// the logged batches into the graph, so on-the-fly PPVs of non-hub queries do
// not revert to the original graph after a restart.
type GraphUpdateLogger interface {
	AppendGraphUpdate(upd GraphUpdate) error
}

// ApplyUpdate implements the dynamic-graph extension sketched in the paper's
// future work (Sect. 7): when the graph changes, only the prime PPVs whose
// prime subgraph can reach a modified node are recomputed, the rest of the
// index is reused. The hub set itself is kept fixed.
//
// A hub h is conservatively considered affected when its stored prime PPV has
// a non-zero entry at the source endpoint of any added or removed edge: tours
// from h change only if they pass through such a node. Because stored prime
// PPVs are clipped, entries below the clip threshold may be missed; callers
// that require exact maintenance should precompute with Clip disabled or call
// Precompute for a full rebuild.
func (e *Engine) ApplyUpdate(upd GraphUpdate) (UpdateStats, error) {
	var stats UpdateStats
	if !e.precomputed {
		return stats, fmt.Errorf("core: ApplyUpdate before Precompute")
	}
	start := time.Now()

	newGraph, err := rebuildGraph(e.g, upd)
	if err != nil {
		return stats, err
	}

	// Identify the nodes whose outgoing transition behaviour changes.
	touched := make(map[graph.NodeID]struct{})
	for _, ed := range upd.AddedEdges {
		touched[ed.From] = struct{}{}
		if !e.g.Directed() {
			touched[ed.To] = struct{}{}
		}
	}
	for _, ed := range upd.RemovedEdges {
		touched[ed.From] = struct{}{}
		if !e.g.Directed() {
			touched[ed.To] = struct{}{}
		}
	}

	var affected []graph.NodeID
	for _, h := range e.hubs.Hubs() {
		// A sharded engine maintains only the hubs its partition owns: an
		// unowned hub is absent from the index by design, and recomputing it
		// here would both duplicate its owner's work and insert a foreign hub
		// into this shard's index (breaking the partition invariant the disk
		// store's update-log replay checks).
		if !e.opts.Partition.Owns(h) {
			continue
		}
		ppv, ok, err := e.index.Get(h)
		if err != nil {
			return stats, fmt.Errorf("core: reading prime PPV of hub %d: %w", h, err)
		}
		if !ok {
			affected = append(affected, h)
			continue
		}
		hit := false
		//lint:ordered membership OR over a set; the result is order-free
		for t := range touched {
			if _, reachable := ppv[t]; reachable || t == h {
				hit = true
				break
			}
		}
		if hit {
			affected = append(affected, h)
		} else {
			stats.UnaffectedHubs++
		}
	}

	// Stage every recomputation against the new graph before mutating any
	// engine state, so a ComputePPV failure leaves the engine fully on the
	// old graph and old index (the common failure; only an index write error
	// during the commit below can still leave a partial update).
	staged := make(map[graph.NodeID]sparse.Vector, len(affected))
	for _, h := range affected {
		ppv, _, err := prime.ComputePPV(newGraph, h, e.hubs, e.opts.primeOptions())
		if err != nil {
			return stats, fmt.Errorf("core: recomputing prime PPV of hub %d: %w", h, err)
		}
		if e.opts.Clip > 0 {
			ppv.Clip(e.opts.Clip)
		}
		staged[h] = ppv
	}
	for _, h := range affected {
		if err := e.index.Put(h, staged[h]); err != nil {
			return stats, fmt.Errorf("core: re-indexing hub %d: %w", h, err)
		}
	}
	// Stage the graph mutation itself alongside the PPV rewrites: a store
	// with a graph-mutation log appends the batch here and fsyncs it in
	// CommitUpdates below, so a restart replays the same graph this update
	// produced.
	if gl, ok := e.index.(GraphUpdateLogger); ok {
		if err := gl.AppendGraphUpdate(upd); err != nil {
			return stats, fmt.Errorf("core: logging graph update: %w", err)
		}
	}
	// Commit the staged writes as one durable batch before adopting the new
	// graph: a store that logs updates fsyncs here, so either the whole batch
	// is durable or the update reports failure (and the serving layer flips
	// the replica to inconsistent).
	if c, ok := e.index.(UpdateCommitter); ok {
		if err := c.CommitUpdates(); err != nil {
			return stats, fmt.Errorf("core: committing index update: %w", err)
		}
	}
	e.g = newGraph
	stats.Epoch = e.epoch.Add(1)
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	stats.AffectedHubs = len(affected)
	stats.Recomputed = affected
	stats.TouchedNodes = make([]graph.NodeID, 0, len(touched))
	//lint:ordered collect-then-sort: the slice is sorted by node id on the next line
	for t := range touched {
		stats.TouchedNodes = append(stats.TouchedNodes, t)
	}
	sort.Slice(stats.TouchedNodes, func(i, j int) bool { return stats.TouchedNodes[i] < stats.TouchedNodes[j] })
	stats.Duration = time.Since(start)
	return stats, nil
}

// ReplayGraphUpdate applies one update batch to g and returns the resulting
// graph, without touching any index: it is the pure graph half of ApplyUpdate,
// used to replay a graph-mutation log on open (the recomputed hub PPVs are
// replayed separately, from the index update log).
func ReplayGraphUpdate(g *graph.Graph, upd GraphUpdate) (*graph.Graph, error) {
	return rebuildGraph(g, upd)
}

// rebuildGraph applies the update to a copy of g and returns the new graph.
func rebuildGraph(g *graph.Graph, upd GraphUpdate) (*graph.Graph, error) {
	numNodes := g.NumNodes()
	if upd.NumNodes > numNodes {
		numNodes = upd.NumNodes
	}
	removed := make(map[graph.Edge]int)
	for _, ed := range upd.RemovedEdges {
		key := canonicalEdge(g, ed)
		removed[key]++
	}
	b := graph.NewBuilder(g.Directed())
	b.EnsureNodes(numNodes)
	var buildErr error
	g.Edges(func(ed graph.Edge) bool {
		if !g.Directed() && ed.From > ed.To {
			return true // visit each undirected edge once
		}
		key := canonicalEdge(g, ed)
		if removed[key] > 0 {
			removed[key]--
			return true
		}
		if err := b.AddEdge(ed.From, ed.To); err != nil {
			buildErr = err
			return false
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	for _, ed := range upd.AddedEdges {
		if err := b.AddEdge(ed.From, ed.To); err != nil {
			return nil, err
		}
	}
	return b.Finalize(), nil
}

// canonicalEdge normalizes an edge key so that, on undirected graphs, both
// orientations identify the same logical edge.
func canonicalEdge(g *graph.Graph, ed graph.Edge) graph.Edge {
	if !g.Directed() && ed.From > ed.To {
		ed.From, ed.To = ed.To, ed.From
	}
	return ed
}
