// Package montecarlo implements the MonteCarlo baseline of the paper's
// evaluation (Sect. 6, Baselines), based on the fingerprint method of Fogaras
// et al.: the PPV of a query node is estimated by simulating N random walks
// ("fingerprints") from the query and recording where they terminate. To
// reduce online work, fingerprints are precomputed offline for a set of hub
// nodes (the top global-PageRank nodes); an online walk that reaches a hub is
// finished by sampling one of the hub's precomputed endpoints instead of
// walking on.
package montecarlo

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fastppv/internal/graph"
	"fastppv/internal/pagerank"
	"fastppv/internal/sparse"
)

// Options configure a MonteCarlo estimator.
type Options struct {
	// Alpha is the teleporting probability; zero means pagerank.DefaultAlpha.
	Alpha float64
	// SamplesPerQuery is N, the number of random walks per online query; zero
	// means 10000.
	SamplesPerQuery int
	// NumHubs is the number of hub nodes whose fingerprints are precomputed
	// offline.
	NumHubs int
	// SamplesPerHub is the number of offline fingerprints per hub; zero means
	// SamplesPerQuery.
	SamplesPerHub int
	// PageRank optionally supplies precomputed global PageRank scores for hub
	// selection.
	PageRank []float64
	// Seed seeds the random number generator used both offline and online.
	Seed int64
	// MaxWalkLength truncates pathological walks; zero means 1000 steps.
	MaxWalkLength int
}

func (o Options) withDefaults() (Options, error) {
	if o.Alpha == 0 {
		o.Alpha = pagerank.DefaultAlpha
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return o, fmt.Errorf("montecarlo: alpha %v outside (0,1)", o.Alpha)
	}
	if o.SamplesPerQuery == 0 {
		o.SamplesPerQuery = 10_000
	}
	if o.SamplesPerQuery < 0 {
		return o, errors.New("montecarlo: negative SamplesPerQuery")
	}
	if o.SamplesPerHub == 0 {
		o.SamplesPerHub = o.SamplesPerQuery
	}
	if o.NumHubs < 0 {
		return o, errors.New("montecarlo: negative NumHubs")
	}
	if o.MaxWalkLength == 0 {
		o.MaxWalkLength = 1000
	}
	return o, nil
}

// OfflineStats reports the cost of Precompute.
type OfflineStats struct {
	Hubs         int
	Total        time.Duration
	IndexBytes   int64
	IndexEntries int64
}

// Estimator is a MonteCarlo PPV estimator bound to a graph.
type Estimator struct {
	g    *graph.Graph
	opts Options
	// fingerprints maps a hub to the multiset of endpoints of its offline
	// walks; sampling one uniformly continues an online walk that hits the
	// hub. The sentinel graph.InvalidNode records walks absorbed at dangling
	// nodes.
	fingerprints map[graph.NodeID][]graph.NodeID
	offline      OfflineStats
}

// New creates an estimator over g.
func New(g *graph.Graph, opts Options) (*Estimator, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("montecarlo: empty graph")
	}
	return &Estimator{g: g, opts: opts, fingerprints: make(map[graph.NodeID][]graph.NodeID)}, nil
}

// OfflineStats returns the statistics of the last Precompute run.
func (e *Estimator) OfflineStats() OfflineStats { return e.offline }

// Hubs returns the hubs with precomputed fingerprints.
func (e *Estimator) Hubs() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(e.fingerprints))
	for h := range e.fingerprints {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Precompute samples fingerprints for the top-PageRank hub nodes.
func (e *Estimator) Precompute() error {
	start := time.Now()
	pr := e.opts.PageRank
	if pr == nil {
		var err error
		pr, err = pagerank.Global(e.g, pagerank.Options{Alpha: e.opts.Alpha})
		if err != nil {
			return err
		}
	}
	n := e.g.NumNodes()
	if len(pr) != n {
		return fmt.Errorf("montecarlo: PageRank vector has %d entries for %d nodes", len(pr), n)
	}
	numHubs := e.opts.NumHubs
	if numHubs > n {
		numHubs = n
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if pr[order[i]] != pr[order[j]] {
			return pr[order[i]] > pr[order[j]]
		}
		return order[i] < order[j]
	})

	rng := rand.New(rand.NewSource(e.opts.Seed))
	e.fingerprints = make(map[graph.NodeID][]graph.NodeID, numHubs)
	for _, h := range order[:numHubs] {
		endpoints := make([]graph.NodeID, e.opts.SamplesPerHub)
		for i := range endpoints {
			endpoints[i] = e.walk(h, rng, nil)
		}
		e.fingerprints[h] = endpoints
	}
	e.offline = OfflineStats{Hubs: numHubs, Total: time.Since(start)}
	for _, fp := range e.fingerprints {
		e.offline.IndexEntries += int64(len(fp))
		e.offline.IndexBytes += 8 + int64(len(fp))*4
	}
	return nil
}

// Result is the outcome of one online query.
type Result struct {
	Estimate sparse.Vector
	// Walks is the number of online random walks simulated.
	Walks int
	// HubHits counts walks finished by sampling a precomputed hub fingerprint.
	HubHits  int
	Duration time.Duration
}

// Query estimates the PPV of q from SamplesPerQuery random walks. Queries are
// deterministic for a fixed Options.Seed and query node.
func (e *Estimator) Query(q graph.NodeID) (*Result, error) {
	if !e.g.Valid(q) {
		return nil, fmt.Errorf("montecarlo: %w: query %d", graph.ErrNodeOutOfRange, q)
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(e.opts.Seed ^ (int64(q)+1)*0x5851f42d4c957f2d))
	counts := make(map[graph.NodeID]int)
	res := &Result{Walks: e.opts.SamplesPerQuery}
	for i := 0; i < e.opts.SamplesPerQuery; i++ {
		end := e.walk(q, rng, res)
		if end != graph.InvalidNode {
			counts[end]++
		}
	}
	est := sparse.New(len(counts))
	for node, c := range counts {
		est[node] = float64(c) / float64(e.opts.SamplesPerQuery)
	}
	res.Estimate = est
	res.Duration = time.Since(start)
	return res, nil
}

// walk simulates one decaying random walk from src and returns its endpoint,
// or graph.InvalidNode when the walk is absorbed at a dangling node. When the
// walk moves onto a hub with precomputed fingerprints (other than src), it is
// finished by sampling one of the hub's endpoints.
func (e *Estimator) walk(src graph.NodeID, rng *rand.Rand, stats *Result) graph.NodeID {
	cur := src
	for step := 0; step < e.opts.MaxWalkLength; step++ {
		if rng.Float64() < e.opts.Alpha {
			return cur
		}
		deg := e.g.OutDegree(cur)
		if deg == 0 {
			return graph.InvalidNode // absorbed
		}
		next := e.g.OutNeighbors(cur)[rng.Intn(deg)]
		if next != src {
			if fp, ok := e.fingerprints[next]; ok && len(fp) > 0 {
				if stats != nil {
					stats.HubHits++
				}
				return fp[rng.Intn(len(fp))]
			}
		}
		cur = next
	}
	return cur
}
