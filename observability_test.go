package fastppv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"fastppv/internal/querylog"
	"fastppv/internal/server"
	"fastppv/internal/workload"
)

// TestLogDrivenWarmingBeatsHeuristic is the acceptance check of PR 9's
// warming path: record a skewed workload into the persistent query log, then
// "restart" against a cold block cache twice — once warming from the replayed
// log, once from the out-degree heuristic — and require the log-driven restart
// to reach at least the heuristic's block-cache hit rate on the same workload.
// The graph is uniform-random, so out-degree carries no workload signal and
// the difference isolates what the log knows: which sources actually get
// queried.
func TestLogDrivenWarmingBeatsHeuristic(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a disk index and serves three workload passes")
	}
	g := buildTestGraph(t, 2000, 5, 11)
	const numHubs = 200
	dir := t.TempDir()
	path := filepath.Join(dir, "index.ppv")
	qlogPath := filepath.Join(dir, "queries.qlog")

	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: numHubs}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		t.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		t.Fatal(err)
	}

	// The block cache holds the whole index, so the hit-rate difference
	// between restarts reflects only what warming preloaded.
	dio := DiskIndexOptions{
		DisableUpdateLog: true, DisableGraphLog: true, BlockCacheBytes: 256 << 20,
	}
	const warmBudget = 32
	runWorkload := func(qlog *querylog.Log, warmHubs int) (source string, hitRate float64) {
		eng, closeIdx, err := OpenDiskIndexWithOptions(g, Options{NumHubs: numHubs}, path, dio)
		if err != nil {
			t.Fatal(err)
		}
		defer closeIdx()
		srv, err := server.New(eng, server.Config{
			QueryLog: qlog, WarmHubs: warmHubs, CacheBytes: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		bcs, ok := eng.Index().(interface {
			BlockCacheStats() (BlockCacheStats, bool)
		})
		if !ok {
			t.Fatal("disk index exposes no block-cache stats")
		}
		// Snapshot after server.New so warming's own loads don't count
		// against the workload's hit rate.
		before, _ := bcs.BlockCacheStats()

		sampler, err := workload.NewZipfSampler(g.NumNodes(), workload.ZipfOptions{S: 1.3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/ppv?node=%d&eta=2&top=10", sampler.Next()))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %d: status %d", i, resp.StatusCode)
			}
		}
		after, _ := bcs.BlockCacheStats()
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}

		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Warming *struct {
				Source string `json:"source"`
			} `json:"warming"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Warming != nil {
			source = st.Warming.Source
		}
		return source, hitRate
	}

	// Day one: serve cold while the query log records the workload.
	qlog, err := querylog.Open(qlogPath, querylog.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(qlog, 0)
	if qlog.Records() == 0 {
		t.Fatal("day-one pass appended no query-log records")
	}
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart A: heuristic warming, no log configured.
	heurSource, heurRate := runWorkload(nil, warmBudget)
	if heurSource != "heuristic" {
		t.Fatalf("warming source without a log = %q, want heuristic", heurSource)
	}

	// Restart B: the log replays on open and drives warming.
	qlog2, err := querylog.Open(qlogPath, querylog.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer qlog2.Close()
	logSource, logRate := runWorkload(qlog2, warmBudget)
	if logSource != "querylog" {
		t.Fatalf("warming source with a replayed log = %q, want querylog", logSource)
	}

	t.Logf("block-cache hit rate: querylog-warmed %.3f, heuristic-warmed %.3f", logRate, heurRate)
	if logRate < heurRate {
		t.Errorf("log-driven warming hit rate %.3f below heuristic %.3f", logRate, heurRate)
	}
}
