// Example cluster runs a two-shard FastPPV cluster in-process: each shard
// precomputes and serves one hash partition of the hub index, a router
// scatter-gathers queries across them, and a single-node engine provides the
// reference answer. It then fans a graph update out through the router —
// every shard advances to the same index epoch and routed answers track a
// single-node engine given the same update — and finally stops one shard to
// show the accuracy-aware degradation: queries keep succeeding, with the same
// estimate semantics and a correctly widened L1 error bound.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"fastppv"
	"fastppv/internal/api"
	"fastppv/internal/cluster"
	"fastppv/internal/core"
	"fastppv/internal/gen"
	"fastppv/internal/server"
)

func main() {
	log.SetFlags(0)

	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 3000, OutDegreeMean: 6, Attachment: 0.8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: one engine holding the whole hub index.
	single, err := fastppv.New(g, fastppv.Options{NumHubs: 300})
	if err != nil {
		log.Fatal(err)
	}
	if err := single.Precompute(); err != nil {
		log.Fatal(err)
	}

	// Two shards: the same hub selection, but each precomputes and stores
	// only its own partition — half the offline cost and index size apiece.
	const shards = 2
	httpSrvs := make([]*http.Server, shards)
	targets := make([]string, shards)
	for s := 0; s < shards; s++ {
		opts := fastppv.Options{NumHubs: 300, Partition: fastppv.Partition{Shard: s, Shards: shards}}
		engine, err := fastppv.New(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		if err := engine.Precompute(); err != nil {
			log.Fatal(err)
		}
		srv, err := server.New(engine, server.Config{})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrvs[s] = &http.Server{Handler: srv.Handler()}
		go httpSrvs[s].Serve(ln)
		targets[s] = "http://" + ln.Addr().String()
		fmt.Printf("shard %d/%d serving %d hubs on %s\n",
			s, shards, engine.Index().Len(), targets[s])
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{Targets: targets, HealthInterval: -1})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	const q, eta = 42, 3
	want, err := single.Query(q, fastppv.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	got, err := rt.Query(q, core.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery node %d at eta=%d:\n", q, eta)
	fmt.Printf("  single node: bound=%.6f\n", want.L1ErrorBound)
	fmt.Printf("  cluster:     bound=%.6f degraded=%v (expanded %d hubs across shards)\n",
		got.L1ErrorBound, got.Degraded, got.HubsExpanded)
	fmt.Println("  top-5 agreement:")
	wt, gt := want.TopK(5), got.TopK(5)
	for i := range wt {
		fmt.Printf("    #%d single=%d cluster=%d score=%.6f\n", i+1, wt[i].Node, gt[i].Node, gt[i].Score)
	}

	// Fan a graph update out through the router: both shards apply the batch
	// in the same order and advance to the same index epoch, so routed
	// answers keep matching a single-node engine that applied the same
	// update.
	const uFrom, uTo = 42, 1777
	cu, err := rt.Update(api.UpdateRequest{AddedEdges: [][]int{{uFrom, uTo}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdate fan-out (+edge %d->%d): epoch=%d applied=%d/%d degraded=%v\n",
		uFrom, uTo, cu.Epoch, cu.Applied, len(cu.Results), cu.Degraded())
	if _, err := single.ApplyUpdate(fastppv.GraphUpdate{AddedEdges: []fastppv.Edge{{From: uFrom, To: uTo}}}); err != nil {
		log.Fatal(err)
	}
	want, err = single.Query(q, fastppv.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	got, err = rt.Query(q, core.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  post-update: single bound=%.6f cluster bound=%.6f (epoch %d, degraded=%v)\n",
		want.L1ErrorBound, got.L1ErrorBound, got.Epoch, got.Degraded)

	// Kill shard 1 (connections included): the router keeps answering, with
	// the unexpandable frontier mass reflected in a wider (still exact)
	// error bound.
	httpSrvs[1].Close()
	degraded, err := rt.Query(q, core.StopCondition{MaxIterations: eta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter stopping shard 1:\n")
	fmt.Printf("  cluster: bound=%.6f degraded=%v shards_down=%d lost_mass=%.6f\n",
		degraded.L1ErrorBound, degraded.Degraded, degraded.ShardsDown, degraded.LostFrontierMass)
	fmt.Printf("  (bound widened by %.6f; answers remain correct, just less refined)\n",
		degraded.L1ErrorBound-got.L1ErrorBound)
}
