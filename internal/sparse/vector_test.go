package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"fastppv/internal/graph"
)

func TestVectorBasicOps(t *testing.T) {
	v := New(4)
	v.Set(1, 0.5)
	v.Set(2, 0.25)
	v.Add(1, 0.1)
	if got := v.Get(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Get(1) = %v, want 0.6", got)
	}
	if got := v.Get(99); got != 0 {
		t.Errorf("Get(missing) = %v, want 0", got)
	}
	if got := v.Sum(); math.Abs(got-0.85) > 1e-12 {
		t.Errorf("Sum = %v, want 0.85", got)
	}
	if got := v.NonZeros(); got != 2 {
		t.Errorf("NonZeros = %d, want 2", got)
	}
	v.Set(2, 0) // deleting via zero
	if v.NonZeros() != 1 {
		t.Errorf("Set(_,0) should delete the entry")
	}
	v.Add(5, 0) // adding zero is a no-op
	if v.NonZeros() != 1 {
		t.Errorf("Add(_,0) should not create an entry")
	}
}

func TestVectorAddScaledAndScale(t *testing.T) {
	a := Vector{1: 1, 2: 2}
	b := Vector{2: 3, 4: 5}
	a.AddScaled(b, 0.5)
	want := Vector{1: 1, 2: 3.5, 4: 2.5}
	if !a.Equal(want, 1e-12) {
		t.Errorf("AddScaled result %v, want %v", a, want)
	}
	a.Scale(2)
	if got := a.Get(4); math.Abs(got-5) > 1e-12 {
		t.Errorf("Scale: Get(4) = %v, want 5", got)
	}
	a.AddScaled(b, 0) // scaling by zero is a no-op
	if got := a.Get(2); math.Abs(got-7) > 1e-12 {
		t.Errorf("AddScaled with scale 0 modified the vector")
	}
	a.AddVector(Vector{1: 1})
	if got := a.Get(1); math.Abs(got-3) > 1e-12 {
		t.Errorf("AddVector: Get(1) = %v, want 3", got)
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1: 1}
	c := v.Clone()
	c.Set(1, 2)
	c.Set(2, 3)
	if v.Get(1) != 1 || v.Get(2) != 0 {
		t.Errorf("modifying the clone changed the original: %v", v)
	}
}

func TestVectorL1Distance(t *testing.T) {
	a := Vector{1: 0.5, 2: 0.5}
	b := Vector{1: 0.25, 3: 0.25}
	want := 0.25 + 0.5 + 0.25
	if got := a.L1Distance(b); math.Abs(got-want) > 1e-12 {
		t.Errorf("L1Distance = %v, want %v", got, want)
	}
	if got := b.L1Distance(a); math.Abs(got-want) > 1e-12 {
		t.Errorf("L1Distance should be symmetric: %v vs %v", got, want)
	}
	if got := a.L1Distance(a.Clone()); got != 0 {
		t.Errorf("L1Distance to an identical vector = %v, want 0", got)
	}
}

func TestVectorClip(t *testing.T) {
	v := Vector{1: 0.5, 2: 1e-6, 3: 1e-3}
	removed := v.Clip(1e-4)
	if removed != 1 {
		t.Errorf("Clip removed %d entries, want 1", removed)
	}
	if v.Get(2) != 0 || v.Get(1) == 0 || v.Get(3) == 0 {
		t.Errorf("Clip kept/removed the wrong entries: %v", v)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	dense := []float64{0, 0.25, 0, 0.75}
	v := FromDense(dense)
	if v.NonZeros() != 2 {
		t.Fatalf("FromDense kept %d entries, want 2", v.NonZeros())
	}
	back := v.Dense(len(dense))
	for i := range dense {
		if back[i] != dense[i] {
			t.Errorf("Dense[%d] = %v, want %v", i, back[i], dense[i])
		}
	}
}

func TestEntriesOrdering(t *testing.T) {
	v := Vector{5: 0.1, 1: 0.4, 3: 0.4, 2: 0.2}
	entries := v.Entries()
	if len(entries) != 4 {
		t.Fatalf("Entries returned %d items", len(entries))
	}
	// Descending score; ties broken by ascending node id (1 before 3).
	wantOrder := []graph.NodeID{1, 3, 2, 5}
	for i, w := range wantOrder {
		if entries[i].Node != w {
			t.Fatalf("Entries order %v, want %v", entries, wantOrder)
		}
	}
}

// sanitize maps an arbitrary generated float64 (possibly NaN or infinite)
// into a small non-negative score.
func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Abs(math.Mod(x, 100))
}

// TestVectorQuickSumAddScaled property-tests that AddScaled preserves total
// mass arithmetic: sum(a + s*b) == sum(a) + s*sum(b).
func TestVectorQuickSumAddScaled(t *testing.T) {
	f := func(aRaw, bRaw []float64, scaleRaw float64) bool {
		scale := sanitize(scaleRaw) / 25
		a, b := New(len(aRaw)), New(len(bRaw))
		for i, x := range aRaw {
			a.Set(graph.NodeID(i), sanitize(x))
		}
		for i, x := range bRaw {
			id := graph.NodeID(i % 50)
			b.Set(id, b.Get(id)+sanitize(x))
		}
		want := a.Sum() + scale*b.Sum()
		a.AddScaled(b, scale)
		return math.Abs(a.Sum()-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestVectorQuickL1TriangleInequality property-tests the metric property of
// L1Distance used by the accuracy metrics.
func TestVectorQuickL1TriangleInequality(t *testing.T) {
	build := func(raw []float64) Vector {
		v := New(len(raw))
		for i, x := range raw {
			id := graph.NodeID(i % 32)
			v.Set(id, v.Get(id)+sanitize(x))
		}
		return v
	}
	f := func(aRaw, bRaw, cRaw []float64) bool {
		a, b, c := build(aRaw), build(bRaw), build(cRaw)
		ab, bc, ac := a.L1Distance(b), b.L1Distance(c), a.L1Distance(c)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
