package fastppv

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index). Every
// benchmark runs the corresponding experiment driver and, on the first
// iteration, prints the regenerated table so that
//
//	go test -bench=. -benchmem
//
// both times the experiments and emits the paper-style tables. The dataset
// scale defaults to "tiny" under -short and to the FASTPPV_BENCH_SCALE
// environment variable otherwise ("small" when unset).
//
// Additional micro-benchmarks cover the primitive operations (prime PPV
// computation, a single online query, exact PPV as the naive baseline) and
// the ablations called out in DESIGN.md §4.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"fastppv/internal/core"
	"fastppv/internal/experiments"
	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/hub"
	"fastppv/internal/pagerank"
	"fastppv/internal/prime"
	"fastppv/internal/querylog"
	"fastppv/internal/server"
	"fastppv/internal/workload"
)

// benchScale picks the dataset scale for the experiment benchmarks.
func benchScale(b *testing.B) experiments.Scale {
	b.Helper()
	if testing.Short() {
		return experiments.ScaleTiny
	}
	if env := os.Getenv("FASTPPV_BENCH_SCALE"); env != "" {
		s, err := experiments.ParseScale(env)
		if err != nil {
			b.Fatalf("FASTPPV_BENCH_SCALE: %v", err)
		}
		return s
	}
	return experiments.ScaleSmall
}

// reportTable prints a regenerated table once per benchmark run.
func reportTable(b *testing.B, printed *bool, table fmt.Stringer) {
	b.Helper()
	if !*printed {
		b.Logf("\n%s", table.String())
		*printed = true
	}
}

// BenchmarkFig06AccuracyModerated regenerates the accuracy table of Fig. 6
// (and the configuration table of Fig. 5, which is embedded in it).
func BenchmarkFig06AccuracyModerated(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		results, err := experiments.AccuracyModerated(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig6Table(results))
	}
}

// BenchmarkFig07OnlineOffline regenerates the online/offline cost comparison
// of Fig. 7 (a)-(c).
func BenchmarkFig07OnlineOffline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		results, err := experiments.AccuracyModerated(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig7Table(results))
	}
}

// BenchmarkFig08HubPolicyOnline regenerates Fig. 8 (hub selection policies,
// online phase).
func BenchmarkFig08HubPolicyOnline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		results, err := experiments.HubPolicies(scale, false)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig8Table(results))
	}
}

// BenchmarkFig09HubPolicyOffline regenerates Fig. 9 (hub selection policies,
// offline phase).
func BenchmarkFig09HubPolicyOffline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		results, err := experiments.HubPolicies(scale, false)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig9Table(results))
	}
}

// BenchmarkFig10HubsOnline regenerates Fig. 10 (effect of |H| on online
// processing).
func BenchmarkFig10HubsOnline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.HubCountSweep(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig10Table(points))
	}
}

// BenchmarkFig11HubsOffline regenerates Fig. 11 (effect of |H| on offline
// precomputation).
func BenchmarkFig11HubsOffline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.HubCountSweep(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig11Table(points))
	}
}

// BenchmarkFig12Iterations regenerates Fig. 12 (incremental online processing
// by varying eta).
func BenchmarkFig12Iterations(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.IterationSweep(scale, 3)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig12Table(points))
	}
}

// BenchmarkFig13GrowthSeries regenerates Fig. 13 (the snapshot/sample series
// used by the scalability study).
func BenchmarkFig13GrowthSeries(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.GrowthSeries(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig13Table(points))
	}
}

// BenchmarkFig14ScalabilityOnline regenerates Fig. 14 (near-constant online
// query time on growing graphs).
func BenchmarkFig14ScalabilityOnline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.Scalability(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig14Table(points))
	}
}

// BenchmarkFig15ScalabilityOffline regenerates Fig. 15 (offline costs growing
// linearly with graph size).
func BenchmarkFig15ScalabilityOffline(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.Scalability(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig15Table(points))
	}
}

// BenchmarkFig16DiskBased regenerates Fig. 16 (disk-based online query
// processing with a one-cluster memory budget).
func BenchmarkFig16DiskBased(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.DiskBased(scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Fig16Table(points))
	}
}

// BenchmarkTheorem2Bound regenerates the Theorem 2 comparison of measured L1
// error against the analytical exponential bound.
func BenchmarkTheorem2Bound(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		points, err := experiments.Theorem2(scale, 8)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.Theorem2Table(points))
	}
}

// BenchmarkAblationDeltaClip runs the delta-prune / storage-clip ablations of
// DESIGN.md §4.
func BenchmarkAblationDeltaClip(b *testing.B) {
	scale := benchScale(b)
	printed := false
	for i := 0; i < b.N; i++ {
		results, err := experiments.Ablations(scale)
		if err != nil {
			b.Fatal(err)
		}
		reportTable(b, &printed, experiments.AblationTable(results))
	}
}

// --- Micro-benchmarks on the primitive operations ---

// benchGraph builds a moderately sized social-style graph once per benchmark
// binary invocation.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 20000, OutDegreeMean: 8, Attachment: 0.85, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchEngine precomputes a FastPPV engine over benchGraph.
func benchEngine(b *testing.B, g *graph.Graph) *core.Engine {
	b.Helper()
	engine, err := core.NewEngine(g, nil, core.Options{NumHubs: 2000})
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkOnlineQuery measures a single FastPPV online query at the paper's
// default eta = 2.
func BenchmarkOnlineQuery(b *testing.B) {
	g := benchGraph(b)
	engine := benchEngine(b, g)
	queries := workload.QuerySet(g, workload.QueryOptions{Count: 256, Seed: 1, RequireOutEdges: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := engine.Query(q, core.DefaultStop()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactPPV measures the naive exact PPV computation that FastPPV
// replaces; comparing it with BenchmarkOnlineQuery shows the online speedup.
func BenchmarkExactPPV(b *testing.B) {
	g := benchGraph(b)
	queries := workload.QuerySet(g, workload.QueryOptions{Count: 64, Seed: 1, RequireOutEdges: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := pagerank.ExactPPV(g, q, pagerank.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrimePPV measures computing a single prime PPV, the unit of work
// of both offline precomputation and iteration 0 of a non-hub query.
func BenchmarkPrimePPV(b *testing.B) {
	g := benchGraph(b)
	hubs, err := hub.Select(g, hub.Options{Policy: hub.ExpectedUtility, Count: 2000})
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.QuerySet(g, workload.QueryOptions{Count: 256, Seed: 2, RequireOutEdges: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, _, err := prime.ComputePPV(g, q, hubs, prime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerThroughput measures end-to-end HTTP serving throughput of
// the query subsystem under a Zipfian-skewed workload: parallel clients hit
// the cache, coalesce, or compute through the admission gate. Cache hit rate
// and computation count are reported as custom metrics.
func BenchmarkServerThroughput(b *testing.B) {
	benchServerThroughput(b, server.Config{})
}

// BenchmarkServerThroughputQueryLog is the same workload with the persistent
// query log appending one record per completed query — the comparison against
// BenchmarkServerThroughput bounds the logging overhead on the serving path
// (the PR 9 budget is <5% on the median).
func BenchmarkServerThroughputQueryLog(b *testing.B) {
	qlog, err := querylog.Open(filepath.Join(b.TempDir(), "queries.qlog"), querylog.Options{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer qlog.Close()
	benchServerThroughput(b, server.Config{QueryLog: qlog})
}

func benchServerThroughput(b *testing.B, cfg server.Config) {
	g := benchGraph(b)
	engine := benchEngine(b, g)
	srv, err := server.New(engine, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 256}

	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sampler, err := workload.NewZipfSampler(g.NumNodes(), workload.ZipfOptions{
			Seed: seed.Add(1),
		})
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			url := fmt.Sprintf("%s/v1/ppv?node=%d&eta=2&top=10", ts.URL, sampler.Next())
			resp, err := client.Get(url)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
		}
	})
	b.StopTimer()
	// Report how much work the cache absorbed via the stats endpoint.
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err == nil {
		var st struct {
			Cache *struct {
				Hits   float64 `json:"hits"`
				Misses float64 `json:"misses"`
			} `json:"cache"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) == nil && st.Cache != nil &&
			st.Cache.Hits+st.Cache.Misses > 0 {
			b.ReportMetric(st.Cache.Hits/(st.Cache.Hits+st.Cache.Misses), "hit-rate")
		}
		resp.Body.Close()
	}
}

// BenchmarkOfflinePrecompute measures the full offline phase (hub selection
// plus prime PPVs for every hub).
func BenchmarkOfflinePrecompute(b *testing.B) {
	g := benchGraph(b)
	pr, err := pagerank.Global(g, pagerank.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine, err := core.NewEngine(g, nil, core.Options{NumHubs: 2000, PageRank: pr})
		if err != nil {
			b.Fatal(err)
		}
		if err := engine.Precompute(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiskServing compares hub-block reads from the on-disk index when
// every read costs a positioned disk read + record decode (cold: block cache
// disabled) against reads served from the hub-block cache (warm). The warm
// path is the steady state of a skewed serving workload; the acceptance bar
// for the disk-serving PR is warm >= 5x faster than cold. A third
// sub-benchmark times full engine queries through the cached disk index.
func BenchmarkDiskServing(b *testing.B) {
	g := buildTestGraph(b, 3000, 6, 42)
	dir := b.TempDir()
	path := dir + "/index.ppv"
	build, closeBuild, err := NewWithDiskIndex(g, Options{NumHubs: 300}, path)
	if err != nil {
		b.Fatal(err)
	}
	if err := build.Precompute(); err != nil {
		b.Fatal(err)
	}
	if err := closeBuild(); err != nil {
		b.Fatal(err)
	}

	b.Run("cold-hub-read", func(b *testing.B) {
		store, err := openDiskStore(path, diskStoreConfig{cacheBytes: -1}) // no cache: raw Sect. 6.3 cost model
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		hubs := store.Hubs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := store.Get(hubs[i%len(hubs)]); !ok || err != nil {
				b.Fatal(ok, err)
			}
		}
	})

	b.Run("warm-hub-read", func(b *testing.B) {
		store, err := openDiskStore(path, diskStoreConfig{cacheBytes: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		hubs := store.Hubs()
		for _, h := range hubs { // fill the cache
			if _, ok, err := store.Get(h); !ok || err != nil {
				b.Fatal(ok, err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := store.Get(hubs[i%len(hubs)]); !ok || err != nil {
				b.Fatal(ok, err)
			}
		}
	})

	b.Run("query-warm-cache", func(b *testing.B) {
		engine, closeIndex, err := OpenDiskIndex(g, Options{NumHubs: 300}, path, 64<<20)
		if err != nil {
			b.Fatal(err)
		}
		defer closeIndex()
		hubs := engine.Index().Hubs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Query(hubs[i%len(hubs)], DefaultStop()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
