package lint

import (
	"go/ast"
	"go/types"
)

// maporderPackages are the answer-affecting packages: everything that feeds
// the byte-identical determinism contract (the query hot loop, the sparse
// kernels, and the cluster fold paths). A `for range` over a map there
// executes in a random order per run, so any order-sensitive work inside it
// (floating-point accumulation, first-wins selection, append-without-sort)
// silently breaks reproducibility across processes and replicas.
var maporderPackages = []string{
	"internal/core",
	"internal/sparse",
	"internal/cluster",
}

// MapOrder flags `for range` statements over map types inside the
// answer-affecting packages. Sites whose order-insensitivity has been
// reviewed carry a `//lint:ordered <justification>` comment on the statement
// (or the line above); the justification is mandatory, so every exemption
// documents *why* iteration order cannot reach an answer.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map in answer-affecting packages where iteration " +
		"order would break byte-identical determinism; escape hatch: " +
		"//lint:ordered <justification>",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) (interface{}, error) {
	if !pathHasSuffix(pass.Path, maporderPackages...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if h, ok := pass.hatchFor("ordered", file, rng.Pos()); ok {
				if h.justification == "" {
					pass.Reportf(rng.Pos(),
						"//lint:ordered requires a justification explaining why map iteration order cannot affect answers")
				}
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map %s in answer-affecting package %s: iteration order is nondeterministic and can break the byte-identical answer guarantee; sort the keys, or annotate with //lint:ordered <justification>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Path)
			return true
		})
	}
	return nil, nil
}
