package sparse

import (
	"math"
	"testing"

	"fastppv/internal/graph"
)

// encodeEntries builds an encoded record payload from (id, score) entries,
// which must be given in ascending id order (as the disk index writes them).
func encodeEntries(entries ...Entry) []byte {
	buf := make([]byte, len(entries)*EncodedEntrySize)
	for i, e := range entries {
		PutEncodedEntry(buf[i*EncodedEntrySize:], e.Node, e.Score)
	}
	return buf
}

// TestAccumulateEmptyEncodedExtension checks that an empty record is a
// no-op for both the merging and the staging path, on empty and non-empty
// accumulators alike.
func TestAccumulateEmptyEncodedExtension(t *testing.T) {
	var a Accumulator
	a.SetVector(Vector{3: 0.5, 7: 0.25})
	before := append([]Entry(nil), a.Entries()...)

	a.AccumulateEncodedExtension(nil, 0.5, 3, 0.2)
	a.AccumulateEncodedExtension([]byte{}, 0.5, 3, 0.2)
	a.StageEncodedExtension(nil, 0.5, 3, 0.2)
	a.Combine()

	got := a.Entries()
	if len(got) != len(before) {
		t.Fatalf("empty extension changed entry count: %d != %d", len(got), len(before))
	}
	for i := range before {
		if got[i] != before[i] {
			t.Fatalf("entry %d changed: %+v != %+v", i, got[i], before[i])
		}
	}

	var empty Accumulator
	empty.AccumulateEncodedExtension(nil, 1, 0, 0.2)
	empty.Combine()
	if empty.Len() != 0 {
		t.Fatalf("empty extension on empty accumulator produced %d entries", empty.Len())
	}
}

// TestSingleNodeVectorExtension drives the owner self-loop correction on the
// smallest possible record: a hub whose prime PPV holds only itself. The
// corrected score alpha - alpha = 0 falls below the extension epsilon, so the
// entry must vanish entirely rather than survive as an explicit zero.
func TestSingleNodeVectorExtension(t *testing.T) {
	const alpha = 0.2
	owner := graph.NodeID(5)
	rec := encodeEntries(Entry{Node: owner, Score: alpha})

	var a Accumulator
	a.AccumulateEncodedExtension(rec, 1.0, owner, alpha)
	if a.Len() != 0 {
		t.Fatalf("self-only record left %d entries, want 0", a.Len())
	}
	a.StageEncodedExtension(rec, 1.0, owner, alpha)
	a.Combine()
	if a.Len() != 0 {
		t.Fatalf("staged self-only record left %d entries, want 0", a.Len())
	}

	// A single non-owner node must survive with the scaled score.
	other := encodeEntries(Entry{Node: 9, Score: 0.5})
	a.AccumulateEncodedExtension(other, 0.5, owner, alpha)
	if a.Len() != 1 || a.Get(9) != 0.25 {
		t.Fatalf("single-node record: got %d entries, score %v; want 1 entry of 0.25", a.Len(), a.Get(9))
	}
}

// TestDuplicateIDStagingOrder stages two records sharing a node and checks
// that Combine folds the duplicates in staging order, bit-identically to
// merging the same records sequentially through the non-staging path — the
// reproducibility contract Combine documents.
func TestDuplicateIDStagingOrder(t *testing.T) {
	const alpha = 0.2
	// Scores chosen so floating-point addition order is observable.
	recA := encodeEntries(Entry{Node: 4, Score: 0.1}, Entry{Node: 8, Score: 1e-17})
	recB := encodeEntries(Entry{Node: 4, Score: 0.3}, Entry{Node: 8, Score: 1.0})

	var staged Accumulator
	staged.StageEncodedExtension(recA, 1.0, 1, alpha)
	staged.StageEncodedExtension(recB, 1.0, 2, alpha)
	staged.Combine()

	var seq Accumulator
	seq.AccumulateEncodedExtension(recA, 1.0, 1, alpha)
	seq.AccumulateEncodedExtension(recB, 1.0, 2, alpha)

	if staged.Len() != seq.Len() {
		t.Fatalf("staged path kept %d entries, sequential %d", staged.Len(), seq.Len())
	}
	se, qe := staged.Entries(), seq.Entries()
	for i := range qe {
		if se[i].Node != qe[i].Node || math.Float64bits(se[i].Score) != math.Float64bits(qe[i].Score) {
			t.Fatalf("entry %d: staged (%d, %x) != sequential (%d, %x)",
				i, se[i].Node, math.Float64bits(se[i].Score), qe[i].Node, math.Float64bits(qe[i].Score))
		}
	}
	if got := staged.Get(4); got != 0.1+0.3 {
		t.Fatalf("duplicate node folded to %v, want %v", got, 0.1+0.3)
	}
}

// TestFromDenseZeroHint covers FromDense on nil and zero-length input and
// confirms explicit zeros are dropped rather than stored.
func TestFromDenseZeroHint(t *testing.T) {
	if v := FromDense(nil); len(v) != 0 {
		t.Fatalf("FromDense(nil) has %d entries", len(v))
	}
	if v := FromDense([]float64{}); len(v) != 0 {
		t.Fatalf("FromDense(empty) has %d entries", len(v))
	}
	v := FromDense([]float64{0, 0.5, 0, 0.25})
	if len(v) != 2 || v[1] != 0.5 || v[3] != 0.25 {
		t.Fatalf("FromDense dropped or misplaced entries: %v", v)
	}
	if _, ok := v[0]; ok {
		t.Fatal("FromDense stored an explicit zero")
	}
}
