package server

import (
	"sync/atomic"
	"time"
)

// serviceLevel is the admission decision for one computation.
type serviceLevel int

const (
	// svcFull grants a full-accuracy computation slot.
	svcFull serviceLevel = iota
	// svcDegraded grants a slot on the cheap degradation path.
	svcDegraded
	// svcShed admits nothing: even the degraded pool is saturated and the
	// request is rejected so the server's work stays bounded.
	svcShed
)

// admission is the bounded worker pool in front of the engine. At most
// maxConcurrent full-accuracy computations run at once; a request that cannot
// get a slot within queueWait is downgraded to the degradation pool (a
// low-eta answer whose L1 error bound is still reported exactly). The
// degradation pool is itself bounded — iteration 0 of a cold non-hub query
// still computes a prime PPV, so unbounded degraded work would defeat the
// gate — and when both pools are full the request is shed with 503 instead of
// queueing.
type admission struct {
	slots         chan struct{}
	degradedSlots chan struct{}
	queueWait     time.Duration

	admitted atomic.Int64
	degraded atomic.Int64
	shed     atomic.Int64
}

func newAdmission(maxConcurrent int, queueWait time.Duration) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	degradedCap := 4 * maxConcurrent
	if degradedCap < 8 {
		degradedCap = 8
	}
	return &admission{
		slots:         make(chan struct{}, maxConcurrent),
		degradedSlots: make(chan struct{}, degradedCap),
		queueWait:     queueWait,
	}
}

// acquire decides the service level for one computation; the caller must
// release the returned level (svcShed holds nothing).
func (a *admission) acquire() serviceLevel {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return svcFull
	default:
	}
	if a.queueWait > 0 {
		t := time.NewTimer(a.queueWait)
		defer t.Stop()
		select {
		case a.slots <- struct{}{}:
			a.admitted.Add(1)
			return svcFull
		case <-t.C:
		}
	}
	select {
	case a.degradedSlots <- struct{}{}:
		a.degraded.Add(1)
		return svcDegraded
	default:
	}
	a.shed.Add(1)
	return svcShed
}

func (a *admission) release(level serviceLevel) {
	switch level {
	case svcFull:
		<-a.slots
	case svcDegraded:
		<-a.degradedSlots
	}
}

// AdmissionStats is a point-in-time summary of the admission gate.
type AdmissionStats struct {
	MaxConcurrent    int   `json:"max_concurrent"`
	MaxDegraded      int   `json:"max_degraded"`
	InFlight         int   `json:"in_flight"`
	InFlightDegraded int   `json:"in_flight_degraded"`
	Admitted         int64 `json:"admitted"`
	Degraded         int64 `json:"degraded"`
	Shed             int64 `json:"shed"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		MaxConcurrent:    cap(a.slots),
		MaxDegraded:      cap(a.degradedSlots),
		InFlight:         len(a.slots),
		InFlightDegraded: len(a.degradedSlots),
		Admitted:         a.admitted.Load(),
		Degraded:         a.degraded.Load(),
		Shed:             a.shed.Load(),
	}
}
