package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format:
//
//	# comment lines start with '#'
//	# the first non-comment line may be a header: "nodes <n> directed|undirected"
//	<from> <to>
//
// Node identifiers are non-negative integers. Without a header the node count
// is inferred as max id + 1 and the graph is treated as directed.

// WriteEdgeList writes g in the edge-list text format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	if _, err := fmt.Fprintf(bw, "nodes %d %s\n", g.NumNodes(), kind); err != nil {
		return err
	}
	var writeErr error
	seen := make(map[Edge]struct{})
	g.Edges(func(e Edge) bool {
		if !g.Directed() {
			key := e
			if key.From > key.To {
				key.From, key.To = key.To, key.From
			}
			if _, ok := seen[key]; ok {
				return true
			}
			seen[key] = struct{}{}
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.From, e.To); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// ReadEdgeList parses the edge-list text format produced by WriteEdgeList. It
// also accepts headerless files (e.g. SNAP-style dumps) which are read as
// directed graphs.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	directed := true
	declaredNodes := -1
	var edges []Edge
	maxID := NodeID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "nodes" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: malformed header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			declaredNodes = n
			switch fields[2] {
			case "directed":
				directed = true
			case "undirected":
				directed = false
			default:
				return nil, fmt.Errorf("graph: line %d: unknown graph kind %q", lineNo, fields[2])
			}
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"from to\", got %q", lineNo, line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q", lineNo, fields[1])
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		e := Edge{From: NodeID(from), To: NodeID(to)}
		if e.From > maxID {
			maxID = e.From
		}
		if e.To > maxID {
			maxID = e.To
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	numNodes := int(maxID) + 1
	if declaredNodes >= 0 {
		if declaredNodes < numNodes {
			return nil, fmt.Errorf("graph: header declares %d nodes but edge references node %d", declaredNodes, maxID)
		}
		numNodes = declaredNodes
	}
	return FromEdges(numNodes, directed, edges)
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeListFile writes g to an edge-list file on disk.
func SaveEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Binary format (little endian):
//
//	magic   uint32  'F','P','G','1'
//	flags   uint32  bit0 = directed, bit1 = has labels
//	nodes   uint64
//	arcs    uint64
//	offsets [nodes+1]uint64
//	targets [arcs]uint32
//	labels  (if bit1) for each node: uint32 length + bytes
const (
	binaryMagic   = uint32('F') | uint32('P')<<8 | uint32('G')<<16 | uint32('1')<<24
	flagDirected  = 1 << 0
	flagHasLabels = 1 << 1
)

// ErrBadBinaryFormat reports a corrupt or foreign binary graph file.
var ErrBadBinaryFormat = errors.New("graph: bad binary format")

// WriteBinary writes g in the compact binary format. It is the preferred
// on-disk representation for the disk-based cluster files since it round-trips
// the CSR layout directly.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var flags uint32
	if g.directed {
		flags |= flagDirected
	}
	if g.HasLabels() {
		flags |= flagHasLabels
	}
	header := []uint64{uint64(binaryMagic), uint64(flags), uint64(g.NumNodes()), uint64(len(g.outTargets))}
	for i, v := range header {
		if i < 2 {
			if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
				return err
			}
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, off := range g.outOffsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(off)); err != nil {
			return err
		}
	}
	for _, t := range g.outTargets {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t)); err != nil {
			return err
		}
	}
	if g.HasLabels() {
		for _, l := range g.labels {
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(l))); err != nil {
				return err
			}
			if _, err := bw.WriteString(l); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format produced by WriteBinary and validates
// the resulting graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, flags uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, ErrBadBinaryFormat
	}
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	var nodes, arcs uint64
	if err := binary.Read(br, binary.LittleEndian, &nodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, err
	}
	offsets := make([]int64, nodes+1)
	for i := range offsets {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		offsets[i] = int64(v)
	}
	targets := make([]NodeID, arcs)
	for i := range targets {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		targets[i] = NodeID(v)
	}
	var labels []string
	if flags&flagHasLabels != 0 {
		labels = make([]string, nodes)
		for i := range labels {
			var l uint32
			if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
				return nil, err
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			labels[i] = string(buf)
		}
	}
	inDeg := make([]int32, nodes)
	for _, t := range targets {
		if t < 0 || uint64(t) >= nodes {
			return nil, fmt.Errorf("%w: target %d out of range", ErrBadBinaryFormat, t)
		}
		inDeg[t]++
	}
	g := &Graph{
		directed:   flags&flagDirected != 0,
		outOffsets: offsets,
		outTargets: targets,
		inDegree:   inDeg,
		labels:     labels,
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBinaryFormat, err)
	}
	return g, nil
}

// SaveBinaryFile writes g to a binary graph file on disk.
func SaveBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile reads a binary graph file from disk.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
