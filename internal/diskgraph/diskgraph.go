// Package diskgraph provides the disk-resident graph view used by the
// disk-based online query processing experiment (Sect. 5.3 and 6.4.2 of the
// paper). The graph is segmented into clusters; each cluster's adjacency
// lists are stored in their own file, and at any time at most one cluster is
// held in memory. Touching a node outside the resident cluster is a "cluster
// fault": the required cluster is swapped in from disk and the fault is
// counted. An optional fault cap prematurely terminates prime-subgraph growth
// exactly as the paper describes, trading a little accuracy for query time.
package diskgraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fastppv/internal/cluster"
	"fastppv/internal/graph"
)

// Store is an on-disk clustered graph. Open one view per query with NewView;
// views are not safe for concurrent use (each models a single query's memory
// budget of one resident cluster).
type Store struct {
	dir        string
	numNodes   int
	assignment []int32
	outDegree  []int32
	numFiles   int
}

// clusterFileName returns the file holding cluster id.
func clusterFileName(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("cluster-%04d.bin", id))
}

// Build writes the clustered representation of g into dir (created if
// needed), one binary file per cluster. The per-node out-degrees and the
// cluster assignment are kept in memory by the returned Store: they are small
// (a few bytes per node) compared to the adjacency lists and correspond to
// the metadata a real deployment would pin in memory.
func Build(g *graph.Graph, clustering *cluster.Clustering, dir string) (*Store, error) {
	if len(clustering.Assignment) != g.NumNodes() {
		return nil, fmt.Errorf("diskgraph: clustering covers %d nodes, graph has %d", len(clustering.Assignment), g.NumNodes())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	k := clustering.NumClusters()
	outDegree := make([]int32, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		outDegree[u] = int32(g.OutDegree(graph.NodeID(u)))
	}
	for id := 0; id < k; id++ {
		if err := writeClusterFile(clusterFileName(dir, id), g, clustering, id); err != nil {
			return nil, err
		}
	}
	return &Store{
		dir:        dir,
		numNodes:   g.NumNodes(),
		assignment: clustering.Assignment,
		outDegree:  outDegree,
		numFiles:   k,
	}, nil
}

// Open loads a Store previously written by Build from dir. The graph itself
// is not read into memory; only the metadata file is.
func Open(dir string) (*Store, error) {
	f, err := os.Open(filepath.Join(dir, "meta.bin"))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var numNodes, numFiles uint64
	if err := binary.Read(br, binary.LittleEndian, &numNodes); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &numFiles); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		numNodes:   int(numNodes),
		numFiles:   int(numFiles),
		assignment: make([]int32, numNodes),
		outDegree:  make([]int32, numNodes),
	}
	for i := range s.assignment {
		if err := binary.Read(br, binary.LittleEndian, &s.assignment[i]); err != nil {
			return nil, err
		}
	}
	for i := range s.outDegree {
		if err := binary.Read(br, binary.LittleEndian, &s.outDegree[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SaveMeta persists the store metadata so the store can be reopened with Open.
func (s *Store) SaveMeta() error {
	f, err := os.Create(filepath.Join(s.dir, "meta.bin"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := binary.Write(bw, binary.LittleEndian, uint64(s.numNodes)); err != nil {
		f.Close()
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(s.numFiles)); err != nil {
		f.Close()
		return err
	}
	for _, a := range s.assignment {
		if err := binary.Write(bw, binary.LittleEndian, a); err != nil {
			f.Close()
			return err
		}
	}
	for _, d := range s.outDegree {
		if err := binary.Write(bw, binary.LittleEndian, d); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// NumNodes returns the number of nodes of the underlying graph.
func (s *Store) NumNodes() int { return s.numNodes }

// NumClusters returns the number of cluster files.
func (s *Store) NumClusters() int { return s.numFiles }

// ClusterOf returns the cluster a node belongs to.
func (s *Store) ClusterOf(u graph.NodeID) int { return int(s.assignment[u]) }

// ClusterFileBytes returns the size in bytes of cluster id's file, used to
// report the working-set size of the disk-based configuration.
func (s *Store) ClusterFileBytes(id int) (int64, error) {
	st, err := os.Stat(clusterFileName(s.dir, id))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// LargestClusterBytes returns the size of the largest cluster file.
func (s *Store) LargestClusterBytes() (int64, error) {
	var max int64
	for id := 0; id < s.numFiles; id++ {
		sz, err := s.ClusterFileBytes(id)
		if err != nil {
			return 0, err
		}
		if sz > max {
			max = sz
		}
	}
	return max, nil
}

// TotalBytes returns the combined size of all cluster files.
func (s *Store) TotalBytes() (int64, error) {
	var total int64
	for id := 0; id < s.numFiles; id++ {
		sz, err := s.ClusterFileBytes(id)
		if err != nil {
			return 0, err
		}
		total += sz
	}
	return total, nil
}

// writeClusterFile stores the adjacency lists of the nodes in cluster id.
// Format (little endian): count uint32, then per node: node uint32, degree
// uint32, degree * target uint32. Cross-cluster targets are included; they
// are what trigger cluster faults at query time.
func writeClusterFile(path string, g *graph.Graph, clustering *cluster.Clustering, id int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	members := clustering.Members(id)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(members))); err != nil {
		f.Close()
		return err
	}
	for _, u := range members {
		nbrs := g.OutNeighbors(u)
		if err := binary.Write(bw, binary.LittleEndian, uint32(u)); err != nil {
			f.Close()
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(nbrs))); err != nil {
			f.Close()
			return err
		}
		for _, v := range nbrs {
			if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readClusterFile loads one cluster's adjacency lists.
func readClusterFile(path string) (map[graph.NodeID][]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	adj := make(map[graph.NodeID][]graph.NodeID, count)
	for i := uint32(0); i < count; i++ {
		var node, deg uint32
		if err := binary.Read(br, binary.LittleEndian, &node); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &deg); err != nil {
			return nil, err
		}
		targets := make([]graph.NodeID, deg)
		for j := uint32(0); j < deg; j++ {
			var t uint32
			if err := binary.Read(br, binary.LittleEndian, &t); err != nil {
				if errors.Is(err, io.EOF) {
					return nil, fmt.Errorf("diskgraph: truncated cluster file %s", path)
				}
				return nil, err
			}
			targets[j] = graph.NodeID(t)
		}
		adj[graph.NodeID(node)] = targets
	}
	return adj, nil
}

// View is a single-query window onto the disk-resident graph: at most one
// cluster is held in memory. It implements prime.Adjacency, so FastPPV's
// online phase can identify the query's prime subgraph directly on it while
// cluster faults are counted.
type View struct {
	store    *Store
	resident int
	adj      map[graph.NodeID][]graph.NodeID
	faults   int
	// maxFaults, when positive, makes accesses outside the resident cluster
	// return an empty adjacency once the fault budget is exhausted
	// (premature termination of the prime-subgraph search, Sect. 5.3).
	maxFaults int
	loadErr   error
}

// NewView opens a fresh view with no resident cluster. maxFaults <= 0 means
// unlimited faults.
func (s *Store) NewView(maxFaults int) *View {
	return &View{store: s, resident: -1, maxFaults: maxFaults}
}

// Faults returns the number of cluster faults taken so far.
func (v *View) Faults() int { return v.faults }

// Err returns the first I/O error encountered while swapping clusters, if
// any. Traversals treat a failed swap like an exhausted fault budget, so the
// error must be checked after the query.
func (v *View) Err() error { return v.loadErr }

// NumNodes implements prime.Adjacency.
func (v *View) NumNodes() int { return v.store.numNodes }

// OutDegree implements prime.Adjacency; it is served from the in-memory
// metadata and never faults.
func (v *View) OutDegree(u graph.NodeID) int { return int(v.store.outDegree[u]) }

// OutNeighbors implements prime.Adjacency. If u's cluster is not resident, a
// cluster fault is taken (unless the fault budget is exhausted, in which case
// an empty adjacency is returned and the walk is truncated there).
func (v *View) OutNeighbors(u graph.NodeID) []graph.NodeID {
	want := v.store.ClusterOf(u)
	if v.resident != want {
		if v.maxFaults > 0 && v.faults >= v.maxFaults {
			return nil
		}
		if !v.swapIn(want) {
			return nil
		}
	}
	return v.adj[u]
}

// swapIn loads cluster id, replacing the resident cluster, and counts the
// fault. It reports whether the load succeeded.
func (v *View) swapIn(id int) bool {
	adj, err := readClusterFile(clusterFileName(v.store.dir, id))
	if err != nil {
		if v.loadErr == nil {
			v.loadErr = err
		}
		return false
	}
	v.faults++
	v.resident = id
	v.adj = adj
	return true
}
