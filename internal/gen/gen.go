// Package gen builds the synthetic datasets that stand in for the paper's two
// evaluation graphs (Sect. 6, Datasets):
//
//   - DBLP: an undirected bibliographic network of authors, papers and venues
//     connected by author-paper and paper-venue edges. Bibliographic generates
//     a tripartite network with power-law author productivity and venue sizes,
//     and stamps every paper with a year so the 1994-2010 snapshot series of
//     Fig. 13(a) can be reproduced.
//
//   - LiveJournal: a directed social network with heavy-tailed degrees.
//     SocialGraph generates a preferential-attachment graph; graph.SampleEdges
//     produces the S1-S5 growth series of Fig. 13(b).
//
// The generators are deterministic given a seed. They reproduce the structural
// properties FastPPV exploits (degree skew, hub reachability); absolute scale
// defaults are reduced so the full benchmark suite runs on a laptop.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"fastppv/internal/graph"
)

// BibliographicConfig sizes the synthetic bibliographic network.
type BibliographicConfig struct {
	// Authors, Papers and Venues are the number of nodes of each kind.
	Papers  int
	Authors int
	Venues  int
	// AuthorsPerPaperMean is the mean number of authors per paper (>= 1).
	AuthorsPerPaperMean float64
	// Zipf skews author selection and venue selection: larger values make a
	// few authors extremely prolific and a few venues extremely large,
	// producing the hub structure FastPPV depends on. Must be > 1.
	Zipf float64
	// YearMin and YearMax bound the publication years assigned to papers
	// (inclusive). Papers are assigned years with more recent years more
	// likely, mimicking the growth of DBLP over time.
	YearMin, YearMax int
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultBibliographicConfig returns a laptop-scale DBLP stand-in (about 86k
// nodes). Scale the Papers/Authors/Venues fields up for stress runs.
func DefaultBibliographicConfig() BibliographicConfig {
	return BibliographicConfig{
		Papers:              50_000,
		Authors:             35_000,
		Venues:              800,
		AuthorsPerPaperMean: 2.6,
		Zipf:                1.35,
		YearMin:             1994,
		YearMax:             2010,
		Seed:                1,
	}
}

func (c BibliographicConfig) validate() error {
	if c.Papers <= 0 || c.Authors <= 0 || c.Venues <= 0 {
		return fmt.Errorf("gen: bibliographic config needs positive node counts, got %d/%d/%d", c.Papers, c.Authors, c.Venues)
	}
	if c.AuthorsPerPaperMean < 1 {
		return fmt.Errorf("gen: AuthorsPerPaperMean %v < 1", c.AuthorsPerPaperMean)
	}
	if c.Zipf <= 1 {
		return fmt.Errorf("gen: Zipf exponent %v must be > 1", c.Zipf)
	}
	if c.YearMax < c.YearMin {
		return fmt.Errorf("gen: YearMax %d < YearMin %d", c.YearMax, c.YearMin)
	}
	return nil
}

// Bibliographic is the generated bibliographic network: the undirected graph
// plus the node-kind partition and per-paper years used by the snapshot
// experiments and the examples.
type Bibliographic struct {
	Graph *graph.Graph
	// Kind of each node: "author", "paper" or "venue" (also stored as the
	// node label prefix).
	Authors []graph.NodeID
	Papers  []graph.NodeID
	Venues  []graph.NodeID
	// PaperYear maps a paper node to its publication year.
	PaperYear map[graph.NodeID]int
	// edges keeps the paper-incident logical edges with their year, enabling
	// Snapshot to rebuild historical graphs.
	edges []timestampedEdge
}

type timestampedEdge struct {
	e    graph.Edge
	year int
}

// NewBibliographic generates a bibliographic network.
func NewBibliographic(cfg BibliographicConfig) (*Bibliographic, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	b := graph.NewBuilder(false)
	out := &Bibliographic{PaperYear: make(map[graph.NodeID]int, cfg.Papers)}

	for i := 0; i < cfg.Authors; i++ {
		out.Authors = append(out.Authors, b.AddLabeledNode(fmt.Sprintf("author/%d", i)))
	}
	for i := 0; i < cfg.Venues; i++ {
		out.Venues = append(out.Venues, b.AddLabeledNode(fmt.Sprintf("venue/%d", i)))
	}

	authorPicker := newZipfPicker(rng, cfg.Zipf, cfg.Authors)
	venuePicker := newZipfPicker(rng, cfg.Zipf, cfg.Venues)
	yearSpan := cfg.YearMax - cfg.YearMin + 1

	for i := 0; i < cfg.Papers; i++ {
		paper := b.AddLabeledNode(fmt.Sprintf("paper/%d", i))
		out.Papers = append(out.Papers, paper)
		// Later years carry more papers (quadratic CDF), mimicking growth.
		year := cfg.YearMin + int(float64(yearSpan)*math.Sqrt(rng.Float64()))
		if year > cfg.YearMax {
			year = cfg.YearMax
		}
		out.PaperYear[paper] = year

		venue := out.Venues[venuePicker.pick()]
		out.addEdge(b, paper, venue, year)

		numAuthors := 1 + poisson(rng, cfg.AuthorsPerPaperMean-1)
		seen := make(map[int]bool, numAuthors)
		for a := 0; a < numAuthors; a++ {
			idx := authorPicker.pick()
			if seen[idx] {
				continue
			}
			seen[idx] = true
			out.addEdge(b, paper, out.Authors[idx], year)
		}
	}
	out.Graph = b.Finalize()
	return out, nil
}

func (bib *Bibliographic) addEdge(b *graph.Builder, from, to graph.NodeID, year int) {
	b.MustAddEdge(from, to)
	bib.edges = append(bib.edges, timestampedEdge{e: graph.Edge{From: from, To: to}, year: year})
}

// Snapshot returns the subnetwork of papers published up to and including
// year, mirroring the DBLP snapshots of Fig. 13(a). Author and venue nodes are
// kept (possibly isolated) so node identifiers are stable across snapshots.
func (bib *Bibliographic) Snapshot(year int) *graph.Graph {
	b := graph.NewBuilder(false)
	b.EnsureNodes(bib.Graph.NumNodes())
	for _, te := range bib.edges {
		if te.year <= year {
			b.MustAddEdge(te.e.From, te.e.To)
		}
	}
	return b.Finalize()
}

// SocialConfig sizes the synthetic directed social network.
type SocialConfig struct {
	// Nodes is the number of users.
	Nodes int
	// OutDegreeMean is the average number of declared friends per user.
	OutDegreeMean float64
	// Attachment controls preferential attachment strength in [0,1]: 0 picks
	// targets uniformly, 1 picks proportionally to current in-degree + 1.
	Attachment float64
	// Seed makes the generator deterministic.
	Seed int64
}

// DefaultSocialConfig returns a laptop-scale LiveJournal stand-in.
func DefaultSocialConfig() SocialConfig {
	return SocialConfig{Nodes: 60_000, OutDegreeMean: 8, Attachment: 0.85, Seed: 7}
}

func (c SocialConfig) validate() error {
	if c.Nodes <= 1 {
		return fmt.Errorf("gen: social config needs at least 2 nodes, got %d", c.Nodes)
	}
	if c.OutDegreeMean < 1 {
		return fmt.Errorf("gen: OutDegreeMean %v < 1", c.OutDegreeMean)
	}
	if c.Attachment < 0 || c.Attachment > 1 {
		return fmt.Errorf("gen: Attachment %v outside [0,1]", c.Attachment)
	}
	return nil
}

// SocialGraph generates a directed friendship graph with heavy-tailed
// in-degrees via preferential attachment. Every node declares at least one
// friend, so the graph has no dangling nodes and the accuracy-aware error
// bound of Eq. 6 is exact on it.
func SocialGraph(cfg SocialConfig) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(true)
	b.EnsureNodes(cfg.Nodes)

	// targets chosen so far; preferential attachment picks uniformly from
	// this multiset (each element is one unit of in-degree).
	attachPool := make([]graph.NodeID, 0, int(float64(cfg.Nodes)*cfg.OutDegreeMean))

	for u := 0; u < cfg.Nodes; u++ {
		deg := 1 + poisson(rng, cfg.OutDegreeMean-1)
		seen := make(map[graph.NodeID]bool, deg)
		for d := 0; d < deg; d++ {
			var v graph.NodeID
			if len(attachPool) > 0 && rng.Float64() < cfg.Attachment {
				v = attachPool[rng.Intn(len(attachPool))]
			} else {
				v = graph.NodeID(rng.Intn(cfg.Nodes))
			}
			if v == graph.NodeID(u) || seen[v] {
				// Retry once with a uniform pick; skip on a second collision
				// to keep generation O(E).
				v = graph.NodeID(rng.Intn(cfg.Nodes))
				if v == graph.NodeID(u) || seen[v] {
					continue
				}
			}
			seen[v] = true
			b.MustAddEdge(graph.NodeID(u), v)
			attachPool = append(attachPool, v)
		}
		if len(seen) == 0 {
			// Guarantee a minimum out-degree of one.
			v := graph.NodeID((u + 1) % cfg.Nodes)
			b.MustAddEdge(graph.NodeID(u), v)
			attachPool = append(attachPool, v)
		}
	}
	return b.Finalize(), nil
}

// zipfPicker draws indexes in [0,n) with a Zipf-like distribution so that low
// indexes are much more popular than high ones.
type zipfPicker struct {
	z *rand.Zipf
	n int
}

func newZipfPicker(rng *rand.Rand, s float64, n int) *zipfPicker {
	return &zipfPicker{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
}

func (p *zipfPicker) pick() int { return int(p.z.Uint64()) }

// poisson draws a Poisson-distributed integer with the given mean using
// Knuth's method; for mean 0 it returns 0.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// RandomDirected generates a uniform random directed graph where every node
// has outDegree out-neighbours chosen without replacement. It has no dangling
// nodes, which makes it convenient for tests of the exact error bound. It is
// not used as a dataset stand-in.
func RandomDirected(nodes, outDegree int, seed int64) (*graph.Graph, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("gen: RandomDirected needs at least 2 nodes, got %d", nodes)
	}
	if outDegree < 1 || outDegree >= nodes {
		return nil, fmt.Errorf("gen: out-degree %d must be in [1,%d)", outDegree, nodes)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(true)
	b.EnsureNodes(nodes)
	for u := 0; u < nodes; u++ {
		seen := map[graph.NodeID]bool{}
		for len(seen) < outDegree {
			v := graph.NodeID(rng.Intn(nodes))
			if v == graph.NodeID(u) || seen[v] {
				continue
			}
			seen[v] = true
			b.MustAddEdge(graph.NodeID(u), v)
		}
	}
	return b.Finalize(), nil
}
