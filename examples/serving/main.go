// Example serving starts the FastPPV HTTP serving subsystem in-process on a
// loopback port and exercises it like a client would: repeated queries (the
// second one is a cache hit), a graph update that invalidates exactly the
// affected cached answers, and the stats endpoint.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"fastppv"
	"fastppv/internal/gen"
	"fastppv/internal/server"
)

func main() {
	log.SetFlags(0)

	// A small synthetic social graph; any graph works.
	g, err := gen.SocialGraph(gen.SocialConfig{Nodes: 3000, OutDegreeMean: 6, Attachment: 0.8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := fastppv.New(g, fastppv.Options{NumHubs: 300})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Precompute(); err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(engine, server.Config{DefaultEta: 2})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// The same query twice: the first answer is computed, the second comes
	// from the result cache — byte-identical, orders of magnitude cheaper.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(base + "/v1/ppv?node=42&eta=2&top=5")
		if err != nil {
			log.Fatal(err)
		}
		var body struct {
			L1ErrorBound float64 `json:"l1_error_bound"`
			Results      []struct {
				Node  int     `json:"node"`
				Score float64 `json:"score"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("query 42 (%s): error bound %.4f, top node %d (%.5f)\n",
			resp.Header.Get("X-Fastppv-Cache"), body.L1ErrorBound,
			body.Results[0].Node, body.Results[0].Score)
	}

	// A graph update: the serving layer recomputes only the affected hub
	// prime PPVs and drops only the cached answers that depended on them.
	upd := `{"added_edges":[[42,7],[42,9]]}`
	resp, err := http.Post(base+"/v1/update", "application/json", strings.NewReader(upd))
	if err != nil {
		log.Fatal(err)
	}
	var ur struct {
		AffectedHubs int `json:"affected_hubs"`
		Invalidated  int `json:"invalidated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("update: %d hubs recomputed, %d cached answers invalidated\n",
		ur.AffectedHubs, ur.Invalidated)

	// The same query again is a miss now — its cached answer was stale.
	resp, err = http.Get(base + "/v1/ppv?node=42&eta=2&top=5")
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("query 42 after update: %s\n", resp.Header.Get("X-Fastppv-Cache"))
}
