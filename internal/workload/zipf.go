package workload

import (
	"fmt"
	"math/rand"

	"fastppv/internal/graph"
)

// ZipfOptions configure a skewed query sampler. Real query logs are heavily
// skewed — a few entities attract most of the traffic — which is exactly what
// a serving-side result cache exploits; the uniform QuerySet protocol of the
// paper's accuracy experiments has no locality for a cache to find.
type ZipfOptions struct {
	// S is the Zipf exponent (> 1); larger values concentrate more traffic on
	// fewer nodes. Zero means 1.2, a web-workload-like skew.
	S float64
	// Seed makes the sampler deterministic: same seed, same sequence.
	Seed int64
	// RequireOutEdges, when sampling from a graph, restricts the popular set
	// to nodes with at least one out-edge.
	RequireOutEdges bool
}

// DefaultZipfS is the default Zipf exponent.
const DefaultZipfS = 1.2

// ZipfSampler draws node ids with Zipfian popularity: rank r is drawn with
// probability proportional to 1/r^S, and ranks are mapped to node ids through
// a seed-determined permutation so the popular nodes are spread over the id
// space. It is not safe for concurrent use; give each goroutine its own
// sampler (distinct seeds give distinct streams).
type ZipfSampler struct {
	zipf *rand.Zipf
	perm []graph.NodeID
}

// NewZipfSampler samples from the id range [0, numNodes).
func NewZipfSampler(numNodes int, opts ZipfOptions) (*ZipfSampler, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("workload: zipf sampler needs at least 1 node, got %d", numNodes)
	}
	ids := make([]graph.NodeID, numNodes)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	return newZipfOver(ids, opts)
}

// NewZipfQueries samples query nodes from g, honouring RequireOutEdges.
func NewZipfQueries(g *graph.Graph, opts ZipfOptions) (*ZipfSampler, error) {
	eligible := make([]graph.NodeID, 0, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		id := graph.NodeID(u)
		if opts.RequireOutEdges && g.OutDegree(id) == 0 {
			continue
		}
		eligible = append(eligible, id)
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("workload: no eligible query nodes")
	}
	return newZipfOver(eligible, opts)
}

func newZipfOver(ids []graph.NodeID, opts ZipfOptions) (*ZipfSampler, error) {
	s := opts.S
	if s == 0 {
		s = DefaultZipfS
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent %v must be > 1", s)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	z := rand.NewZipf(rng, s, 1, uint64(len(ids)-1))
	if z == nil {
		return nil, fmt.Errorf("workload: bad zipf parameters (s=%v, n=%d)", s, len(ids))
	}
	return &ZipfSampler{zipf: z, perm: ids}, nil
}

// Next draws the next query node.
func (zs *ZipfSampler) Next() graph.NodeID {
	return zs.perm[zs.zipf.Uint64()]
}

// Draw returns count samples.
func (zs *ZipfSampler) Draw(count int) []graph.NodeID {
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = zs.Next()
	}
	return out
}
