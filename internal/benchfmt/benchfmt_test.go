package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got != (Percentiles{}) {
		t.Fatalf("empty input: got %+v", got)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(99 - i) // descending: Summarize must sort a copy
	}
	p := Summarize(xs)
	if p.P50 != 49 || p.P90 != 89 || p.P99 != 98 || p.Max != 99 || p.N != 100 {
		t.Fatalf("unexpected summary %+v", p)
	}
	if xs[0] != 99 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSummarizeDurations(t *testing.T) {
	p := SummarizeDurations([]time.Duration{2 * time.Millisecond, 4 * time.Millisecond})
	if p.P50 != 2 || p.Max != 4 || p.N != 2 {
		t.Fatalf("unexpected summary %+v", p)
	}
}

func TestWriteFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	in := &Report{
		Source:     "ppvload",
		Mode:       "router",
		QPS:        123.5,
		LatencyMS:  Percentiles{P50: 1, P99: 9, Max: 11, N: 100},
		WarmReadNS: 250,
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if out.Schema != Schema {
		t.Fatalf("schema not stamped: %q", out.Schema)
	}
	if out.QPS != in.QPS || out.LatencyMS != in.LatencyMS || out.WarmReadNS != in.WarmReadNS {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
}
