package ppvindex

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"fastppv/internal/graph"
	"fastppv/internal/sparse"
)

// Update-log layout (little endian):
//
//	header (24 bytes):
//	  magic     uint32 'F','P','L','1'
//	  version   uint32 (currently 1)
//	  baseBytes uint64 size of the base index file this log belongs to
//	  baseHubs  uint32 hub count of that base file
//	  reserved  uint32
//	frames (zero or more, appended in commit order):
//	  payloadLen uint32  bytes of payload
//	  crc        uint32  CRC-32 (IEEE) of the payload
//	  payload            one hub record: hub, count, count x { node, score }
//
// The log is the durability side-channel of a finalized disk index: every
// post-finalize Put (an incremental update recomputing a hub's prime PPV)
// appends one frame, and a batch of frames is committed with a single fsync.
// On open the frames are replayed in order; replay is idempotent — applying a
// frame whose record is already in the base index rewrites the same value —
// which is what makes the compaction commit protocol (rename the rewritten
// base first, reset the log second) crash-consistent at every point.
//
// The header binds the log to one specific base file (its size and hub
// count): opening a log whose binding does not match the base being served
// resets it instead of replaying, so a log left behind by a crashed rebuild
// or an interrupted compaction can never replay foreign records onto a base
// they do not belong to.
//
// A torn tail (a crash mid-append leaves a truncated frame or one whose CRC
// does not match) is truncated away on open, standard WAL semantics: frames
// before the tear are kept, nothing after an invalid frame is trusted.
const (
	logMagic         = uint32('F') | uint32('P')<<8 | uint32('L')<<16 | uint32('1')<<24
	logVersion       = 1
	logHeaderBytes   = 24
	logFrameOverhead = 8 // payloadLen + crc
)

// ErrCompactionInProgress reports that a compaction of a disk index is
// already running; at most one runs at a time.
var ErrCompactionInProgress = errors.New("ppvindex: compaction already in progress")

// ErrUpdateInFlight reports that a compaction was requested while an
// incremental-update batch had appended but not yet committed log frames;
// compacting mid-batch would make half the batch durable, so the caller
// should retry once the update commits.
var ErrUpdateInFlight = errors.New("ppvindex: update batch in flight, retry compaction after it commits")

// UpdateLog is an append-only, CRC-framed record log alongside a disk index.
// Append buffers frames; Commit flushes and fsyncs them as one batch. It is
// not safe for concurrent use; callers serialize access (the disk store's
// mutex).
type UpdateLog struct {
	f       *os.File
	w       *bufio.Writer
	size    int64 // header + all appended frames, committed or buffered
	records int64
	// committedSize/committedRecords trail size/records until Commit runs;
	// the gap between them is the in-flight (not yet durable) batch.
	committedSize    int64
	committedRecords int64
	// baseBytes/baseHubs identify the base index file the logged records
	// apply to; they are written into the header and re-stamped by Reset.
	baseBytes int64
	baseHubs  int
}

// OpenUpdateLog opens (or creates) the update log at path and replays every
// valid frame through replay, in append order. baseBytes and baseHubs
// identify the base index file being served: a log bound to a different base
// (a leftover from a crashed rebuild, or one whose compaction renamed the
// base but died before the log reset) is discarded — reset to empty — instead
// of replayed. A torn tail is truncated; a foreign or corrupt header fails
// with ErrBadIndexFormat. The returned log is positioned for appending.
func OpenUpdateLog(path string, baseBytes int64, baseHubs int, replay func(h graph.NodeID, ppv sparse.Vector) error) (*UpdateLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l := &UpdateLog{f: f, baseBytes: baseBytes, baseHubs: baseHubs}
	if st.Size() < logHeaderBytes {
		// New log, or a crash tore the header itself before any frame could
		// have been committed: (re)write a fresh header.
		if err := l.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		header := make([]byte, logHeaderBytes)
		if _, err := f.ReadAt(header, 0); err != nil {
			f.Close()
			return nil, err
		}
		if binary.LittleEndian.Uint32(header[0:]) != logMagic {
			f.Close()
			return nil, fmt.Errorf("%w: update log %s has a foreign magic", ErrBadIndexFormat, path)
		}
		if v := binary.LittleEndian.Uint32(header[4:]); v != logVersion {
			f.Close()
			return nil, fmt.Errorf("%w: update log %s has unsupported version %d", ErrBadIndexFormat, path, v)
		}
		boundBytes := int64(binary.LittleEndian.Uint64(header[8:]))
		boundHubs := int(binary.LittleEndian.Uint32(header[16:]))
		if boundBytes != baseBytes || boundHubs != baseHubs {
			// The log belongs to a different base file than the one being
			// served; its records must not replay here. Start fresh, bound to
			// the current base.
			if err := l.writeHeader(); err != nil {
				f.Close()
				return nil, err
			}
		} else {
			end, records, err := l.replayFrames(st.Size(), replay)
			if err != nil {
				f.Close()
				return nil, err
			}
			// Drop the torn tail (if any) so appends continue from the last
			// valid frame.
			if end < st.Size() {
				if err := f.Truncate(end); err != nil {
					f.Close()
					return nil, err
				}
			}
			if _, err := f.Seek(end, io.SeekStart); err != nil {
				f.Close()
				return nil, err
			}
			l.size, l.records = end, records
			l.committedSize, l.committedRecords = end, records
		}
	}
	l.w = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// writeHeader truncates the file and writes a fresh header carrying the
// current base binding, leaving the write offset right after it.
func (l *UpdateLog) writeHeader() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	header := make([]byte, logHeaderBytes)
	binary.LittleEndian.PutUint32(header[0:], logMagic)
	binary.LittleEndian.PutUint32(header[4:], logVersion)
	binary.LittleEndian.PutUint64(header[8:], uint64(l.baseBytes))
	binary.LittleEndian.PutUint32(header[16:], uint32(l.baseHubs))
	if _, err := l.f.WriteAt(header, 0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if _, err := l.f.Seek(logHeaderBytes, io.SeekStart); err != nil {
		return err
	}
	l.size, l.records = logHeaderBytes, 0
	l.committedSize, l.committedRecords = logHeaderBytes, 0
	return nil
}

// replayFrames scans frames from the header to fileSize, calling replay for
// each valid one, and returns the end offset of the last valid frame plus the
// number of frames replayed. Scanning stops at the first truncated or
// CRC-mismatching frame.
func (l *UpdateLog) replayFrames(fileSize int64, replay func(h graph.NodeID, ppv sparse.Vector) error) (int64, int64, error) {
	off := int64(logHeaderBytes)
	var records int64
	frameHeader := make([]byte, logFrameOverhead)
	for off+logFrameOverhead <= fileSize {
		if _, err := l.f.ReadAt(frameHeader, off); err != nil {
			return 0, 0, err
		}
		payloadLen := int64(binary.LittleEndian.Uint32(frameHeader[0:]))
		wantCRC := binary.LittleEndian.Uint32(frameHeader[4:])
		// A frame that cannot hold a record header, does not cover whole
		// entries, or runs past the file is a torn append; stop before it.
		if payloadLen < 8 || (payloadLen-8)%entryBytes != 0 || off+logFrameOverhead+payloadLen > fileSize {
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := l.f.ReadAt(payload, off+logFrameOverhead); err != nil {
			return 0, 0, err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		h, ppv, err := decodeRecordPayload(payload)
		if err != nil {
			break
		}
		if replay != nil {
			if err := replay(h, ppv); err != nil {
				return 0, 0, err
			}
		}
		off += logFrameOverhead + payloadLen
		records++
	}
	return off, records, nil
}

// Append buffers one update frame. It does not hit the disk until Commit.
func (l *UpdateLog) Append(h graph.NodeID, ppv sparse.Vector) error {
	payload := encodeRecord(h, ppv)
	var frameHeader [logFrameOverhead]byte
	binary.LittleEndian.PutUint32(frameHeader[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frameHeader[4:], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(frameHeader[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.size += logFrameOverhead + int64(len(payload))
	l.records++
	return nil
}

// Commit flushes every appended frame and fsyncs the file: one durable batch
// per incremental update, however many hubs it recomputed.
func (l *UpdateLog) Commit() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.committedSize, l.committedRecords = l.size, l.records
	return nil
}

// Uncommitted reports whether frames have been appended since the last
// Commit (or Reset): an update batch is mid-flight and a compaction must not
// fold its already-appended half into the base.
func (l *UpdateLog) Uncommitted() bool { return l.size != l.committedSize }

// Reset empties the log back to a bare header (fsync'd), re-bound to the
// given base file. Compaction calls it after the rewritten base index has
// been renamed into place: from that point the base owns every logged update,
// and an empty log bound to the new base is the durable record of that fact.
func (l *UpdateLog) Reset(baseBytes int64, baseHubs int) error {
	l.w.Reset(l.f) // drop any uncommitted buffered frames
	l.baseBytes, l.baseHubs = baseBytes, baseHubs
	return l.writeHeader()
}

// SizeBytes returns the log size in bytes, including the header and any
// still-buffered frames.
func (l *UpdateLog) SizeBytes() int64 { return l.size }

// Records returns the number of frames in the log, including buffered ones.
func (l *UpdateLog) Records() int64 { return l.records }

// Close discards any frames appended since the last Commit, fsyncs and closes
// the log file. Frames still uncommitted at Close belong to an update batch
// that never committed (ApplyUpdate reports failure exactly when the commit
// does not complete); persisting them would replay half a batch — hub PPVs of
// a graph change that officially never happened — so the tail rolls back to
// the last committed frame instead.
func (l *UpdateLog) Close() error {
	l.w.Reset(l.f)
	var firstErr error
	if l.size != l.committedSize {
		if err := l.f.Truncate(l.committedSize); err != nil {
			firstErr = err
		}
		l.size, l.records = l.committedSize, l.committedRecords
	}
	if err := l.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := l.f.Close(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// DurabilityStats summarizes the durable-update machinery of a disk-backed
// index store: the in-memory overlay of rewritten hubs and the update log
// behind it. The serving layer's /v1/stats exposes these.
type DurabilityStats struct {
	// LogEnabled reports whether post-finalize Puts are persisted to an
	// update log (false means the overlay is volatile, the pre-durability
	// behaviour).
	LogEnabled bool `json:"log_enabled"`
	// OverlayHubs is the number of hubs whose current prime PPV lives in the
	// in-memory overlay rather than the base file.
	OverlayHubs int `json:"overlay_hubs"`
	// LogBytes and LogRecords size the update log (LogBytes includes the
	// 24-byte file header).
	LogBytes   int64 `json:"log_bytes"`
	LogRecords int64 `json:"log_records"`
	// GraphLogEnabled reports whether committed graph updates themselves are
	// persisted to a graph-mutation log (false means a restart reverts the
	// graph to the original -graph file even though the updated hub PPVs
	// replay from the update log).
	GraphLogEnabled bool `json:"graph_log_enabled"`
	// GraphLogBytes and GraphLogRecords size the graph-mutation log;
	// GraphLogRecords equals the index epoch the store would replay to.
	GraphLogBytes   int64 `json:"graph_log_bytes,omitempty"`
	GraphLogRecords int64 `json:"graph_log_records,omitempty"`
	// Compactions counts completed compactions since the store was opened.
	Compactions int64 `json:"compactions"`
}

// CompactionResult reports what one compaction did.
type CompactionResult struct {
	// TotalHubs is the number of hubs in the rewritten index; RewrittenHubs
	// of them took their record from the overlay (i.e. had pending updates).
	TotalHubs     int `json:"total_hubs"`
	RewrittenHubs int `json:"rewritten_hubs"`
	// LogRecordsFolded and LogBytesFreed describe the update log that the
	// rewrite absorbed.
	LogRecordsFolded int64 `json:"log_records_folded"`
	LogBytesFreed    int64 `json:"log_bytes_freed"`
	// IndexBytes is the size of the rewritten index file.
	IndexBytes int64 `json:"index_bytes"`
	// DurationMS is the wall time of the compaction.
	DurationMS float64 `json:"duration_ms"`
}
