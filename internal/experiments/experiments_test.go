package experiments

// The experiment drivers are exercised end-to-end at ScaleTiny: these tests
// are the integration tests of the whole repository, since each driver spans
// the generators, the FastPPV engine, both baselines, the metrics and the
// clustering/disk substrates.

import (
	"strings"
	"testing"
)

func TestLoadDatasetsAndCache(t *testing.T) {
	d1, err := Load(DBLP, ScaleTiny)
	if err != nil {
		t.Fatalf("Load(DBLP): %v", err)
	}
	if d1.Graph.NumNodes() == 0 || len(d1.Queries) == 0 || len(d1.PageRank) != d1.Graph.NumNodes() {
		t.Fatalf("DBLP dataset incomplete: %d nodes, %d queries", d1.Graph.NumNodes(), len(d1.Queries))
	}
	if d1.Bib == nil {
		t.Error("DBLP dataset should carry the bibliographic generator output")
	}
	d2, err := Load(DBLP, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Load should return the cached dataset for the same name and scale")
	}
	lj, err := Load(LiveJournal, ScaleTiny)
	if err != nil {
		t.Fatalf("Load(LiveJournal): %v", err)
	}
	if !lj.Graph.Directed() {
		t.Error("LiveJournal stand-in must be directed")
	}
	if d1.DefaultHubs() <= 0 || lj.DefaultHubs() <= 0 {
		t.Error("DefaultHubs must be positive")
	}
	if _, err := Load("bogus", ScaleTiny); err == nil {
		t.Error("unknown dataset name should fail")
	}
	// Exact PPVs are cached per query node.
	q := d1.Queries[0]
	a, err := d1.ExactPPV(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d1.ExactPPV(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.L1Distance(b) != 0 {
		t.Error("cached exact PPV differs from the first computation")
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"tiny", ScaleTiny}, {"small", ScaleSmall}, {"", ScaleSmall}, {"medium", ScaleMedium}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale should fail")
	}
	if ScaleTiny.String() != "tiny" || ScaleMedium.String() != "medium" {
		t.Error("Scale.String is wrong")
	}
}

func TestIterationSweepImprovesWithEta(t *testing.T) {
	points, err := IterationSweep(ScaleTiny, 2)
	if err != nil {
		t.Fatalf("IterationSweep: %v", err)
	}
	if len(points) != 6 { // two datasets x eta 0..2
		t.Fatalf("IterationSweep returned %d points, want 6", len(points))
	}
	byDataset := map[DatasetName][]IterationPoint{}
	for _, p := range points {
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	for name, series := range byDataset {
		for i := 1; i < len(series); i++ {
			if series[i].AvgL1Bound > series[i-1].AvgL1Bound+1e-9 {
				t.Errorf("%s: phi bound increased from eta=%d to eta=%d", name, i-1, i)
			}
			if series[i].Accuracy.L1Similarity+1e-9 < series[i-1].Accuracy.L1Similarity {
				t.Errorf("%s: L1 similarity decreased from eta=%d to eta=%d", name, i-1, i)
			}
		}
	}
	table := Fig12Table(points).String()
	if !strings.Contains(table, "Fig. 12") {
		t.Error("Fig12Table missing title")
	}
}

func TestHubPoliciesCoverRequestedPolicies(t *testing.T) {
	results, err := HubPolicies(ScaleTiny, true)
	if err != nil {
		t.Fatalf("HubPolicies: %v", err)
	}
	// 2 datasets x 4 policies (including random).
	if len(results) != 8 {
		t.Fatalf("HubPolicies returned %d results, want 8", len(results))
	}
	for _, r := range results {
		if r.Result.Accuracy.Precision < 0 || r.Result.Accuracy.Precision > 1 {
			t.Errorf("%s/%v: precision out of range: %v", r.Dataset, r.Policy, r.Result.Accuracy.Precision)
		}
		if r.Result.OfflineTime <= 0 {
			t.Errorf("%s/%v: offline time not recorded", r.Dataset, r.Policy)
		}
	}
	if s := Fig8Table(results).String(); !strings.Contains(s, "expected-utility") {
		t.Error("Fig8Table missing the expected-utility policy row")
	}
	if s := Fig9Table(results).String(); !strings.Contains(s, "Offline") {
		t.Error("Fig9Table missing offline columns")
	}
}

func TestGrowthSeriesShape(t *testing.T) {
	points, err := GrowthSeries(ScaleTiny)
	if err != nil {
		t.Fatalf("GrowthSeries: %v", err)
	}
	if len(points) != 10 {
		t.Fatalf("GrowthSeries returned %d points, want 10 (5 DBLP snapshots + 5 LJ samples)", len(points))
	}
	var lastDBLP, lastLJ int
	for _, p := range points {
		if p.Edges <= 0 || p.Nodes <= 0 {
			t.Errorf("%s/%s: empty graph in growth series", p.Dataset, p.Label)
		}
		switch p.Dataset {
		case DBLP:
			if p.Edges < lastDBLP {
				t.Errorf("DBLP snapshot %s shrank", p.Label)
			}
			lastDBLP = p.Edges
		case LiveJournal:
			if p.Edges < lastLJ {
				t.Errorf("LiveJournal sample %s shrank", p.Label)
			}
			lastLJ = p.Edges
		}
	}
	if s := Fig13Table(points).String(); !strings.Contains(s, "S5") {
		t.Error("Fig13Table missing the S5 sample")
	}
}

func TestTheorem2BoundHolds(t *testing.T) {
	points, err := Theorem2(ScaleTiny, 4)
	if err != nil {
		t.Fatalf("Theorem2: %v", err)
	}
	if len(points) == 0 {
		t.Fatal("Theorem2 returned no points")
	}
	for _, p := range points {
		if p.MeasuredPhi > p.TheoremBound+1e-9 {
			t.Errorf("%s k=%d: measured phi %.4f exceeds the bound %.4f",
				p.Dataset, p.Iteration, p.MeasuredPhi, p.TheoremBound)
		}
	}
}

func TestDiskBasedTrends(t *testing.T) {
	points, err := DiskBased(ScaleTiny, []int{4, 8})
	if err != nil {
		t.Fatalf("DiskBased: %v", err)
	}
	if len(points) != 4 { // two datasets x two cluster counts
		t.Fatalf("DiskBased returned %d points, want 4", len(points))
	}
	byDataset := map[DatasetName][]DiskPoint{}
	for _, p := range points {
		if p.AvgFaults < 1 {
			t.Errorf("%s with %d clusters reports %.2f faults/query, want at least 1",
				p.Dataset, p.Clusters, p.AvgFaults)
		}
		byDataset[p.Dataset] = append(byDataset[p.Dataset], p)
	}
	for name, series := range byDataset {
		if len(series) != 2 {
			continue
		}
		// More clusters => smaller working set (the key claim of Fig. 16).
		if series[1].MemoryNeedRatio >= series[0].MemoryNeedRatio {
			t.Errorf("%s: memory need did not shrink with more clusters: %.3f -> %.3f",
				name, series[0].MemoryNeedRatio, series[1].MemoryNeedRatio)
		}
	}
}
