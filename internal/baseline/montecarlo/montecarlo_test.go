package montecarlo

import (
	"testing"

	"fastppv/internal/gen"
	"fastppv/internal/graph"
	"fastppv/internal/metrics"
	"fastppv/internal/pagerank"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := gen.RandomDirected(150, 4, 9)
	if err != nil {
		t.Fatalf("RandomDirected: %v", err)
	}
	return g
}

func TestQueryApproximatesExactPPV(t *testing.T) {
	g := testGraph(t)
	e, err := New(g, Options{SamplesPerQuery: 20000, NumHubs: 0, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatalf("Precompute: %v", err)
	}
	res, err := e.Query(3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	exact, err := pagerank.ExactPPV(g, 3, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(exact, res.Estimate, 10)
	if rep.Precision < 0.6 || rep.RAG < 0.9 {
		t.Errorf("MonteCarlo with 20k samples is too inaccurate: %+v", rep)
	}
	if res.Estimate.Sum() > 1+1e-9 {
		t.Errorf("estimate mass %v exceeds 1", res.Estimate.Sum())
	}
	if res.Walks != 20000 {
		t.Errorf("Walks = %d, want 20000", res.Walks)
	}
}

func TestMoreSamplesImproveAccuracy(t *testing.T) {
	g := testGraph(t)
	few, err := New(g, Options{SamplesPerQuery: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := few.Precompute(); err != nil {
		t.Fatal(err)
	}
	many, err := New(g, Options{SamplesPerQuery: 50000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := many.Precompute(); err != nil {
		t.Fatal(err)
	}
	exact, err := pagerank.ExactPPV(g, 0, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := few.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := many.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.L1Distance(mr.Estimate) >= exact.L1Distance(fr.Estimate) {
		t.Errorf("more samples should reduce the L1 error: %.4f (50k) vs %.4f (200)",
			exact.L1Distance(mr.Estimate), exact.L1Distance(fr.Estimate))
	}
}

func TestQueriesAreDeterministicPerSeed(t *testing.T) {
	g := testGraph(t)
	e, err := New(g, Options{SamplesPerQuery: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	a, err := e.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Estimate.L1Distance(b.Estimate); d != 0 {
		t.Errorf("repeated query differs by %v, want identical results for a fixed seed", d)
	}
}

func TestHubFingerprintsAreUsed(t *testing.T) {
	g := testGraph(t)
	e, err := New(g, Options{SamplesPerQuery: 5000, NumHubs: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if len(e.Hubs()) != 30 {
		t.Fatalf("Hubs() returned %d, want 30", len(e.Hubs()))
	}
	if e.OfflineStats().IndexEntries == 0 {
		t.Error("offline fingerprints missing")
	}
	res, err := e.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.HubHits == 0 {
		t.Error("expected some walks to finish through hub fingerprints")
	}
	// Accuracy should still be reasonable when reusing hub fingerprints.
	exact, err := pagerank.ExactPPV(g, 2, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := metrics.Evaluate(exact, res.Estimate, 10)
	if rep.RAG < 0.85 {
		t.Errorf("hub fingerprint reuse degraded RAG to %.3f", rep.RAG)
	}
}

func TestWalkAbsorbedAtDanglingNodes(t *testing.T) {
	// 0 -> 1 with 1 dangling: every walk either stops at 0 or is absorbed at
	// 1 after the first step, so the estimate lives on {0, 1} and sums below 1.
	b := graph.NewBuilder(true)
	b.EnsureNodes(2)
	b.MustAddEdge(0, 1)
	g := b.Finalize()
	e, err := New(g, Options{SamplesPerQuery: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Get(0) == 0 {
		t.Error("query node should retain mass")
	}
	if sum := res.Estimate.Sum(); sum >= 1 {
		t.Errorf("with an absorbing dangling node the estimate should sum below 1, got %v", sum)
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := New(nil, Options{}); err == nil {
		t.Error("nil graph should be rejected")
	}
	if _, err := New(g, Options{Alpha: -1}); err == nil {
		t.Error("invalid alpha should be rejected")
	}
	if _, err := New(g, Options{SamplesPerQuery: -5}); err == nil {
		t.Error("negative sample count should be rejected")
	}
	e, err := New(g, Options{SamplesPerQuery: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Precompute(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(-1); err == nil {
		t.Error("negative query node should fail")
	}
}
